//! Reconnect safety: a subscriber connection killed at *any* byte offset
//! of its request stream must leave the session in a well-defined state —
//! exactly the operations whose frames were fully received are applied,
//! resuming the session reports exactly the surviving subscription ids
//! (each once), and post-resume deliveries match a brute-force oracle.
//!
//! The sweep cuts the same pre-encoded operation stream at every frame
//! boundary *and* in the middle of every frame, for all five engines.

use pubsub_broker::{SharedBroker, Validity};
use pubsub_core::EngineKind;
use pubsub_net::{
    Ack, Client, Frame, FrameReader, Server, WireEvent, WirePredicate, WireValue, NEW_SESSION,
    PROTOCOL_VERSION,
};
use pubsub_types::{Operator, Predicate, Subscription, SubscriptionId, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

const ATTRS: [&str; 5] = ["price", "venue", "qty", "side", "tier"];
const OPS: [Operator; 6] = [
    Operator::Lt,
    Operator::Le,
    Operator::Eq,
    Operator::Ne,
    Operator::Ge,
    Operator::Gt,
];

/// One integer predicate: `attr op value`.
type Pred = (&'static str, Operator, i64);

/// A session operation, encodable as one request frame.
enum Op {
    Sub(Vec<Pred>),
    /// Unsubscribe the id returned by the `k`-th `Sub` op.
    Unsub(usize),
}

fn cmp(event_value: i64, op: Operator, pred_value: i64) -> bool {
    match op {
        Operator::Lt => event_value < pred_value,
        Operator::Le => event_value <= pred_value,
        Operator::Eq => event_value == pred_value,
        Operator::Ne => event_value != pred_value,
        Operator::Ge => event_value >= pred_value,
        Operator::Gt => event_value > pred_value,
    }
}

/// Brute-force conjunction semantics, straight from the paper: every
/// predicate's attribute must be present and satisfied.
fn matches(preds: &[Pred], event: &[(&'static str, i64)]) -> bool {
    preds.iter().all(|(attr, op, value)| {
        event
            .iter()
            .find(|(a, _)| a == attr)
            .is_some_and(|(_, ev)| cmp(*ev, *op, *value))
    })
}

/// A deterministic mixed workload: 8 ops, subscribes with 1–2 predicates
/// over distinct attributes, interleaved with unsubscribes of live ids.
fn build_ops(rng: &mut SmallRng) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut live: Vec<usize> = Vec::new(); // indices into the Sub-op order
    let mut subs = 0usize;
    for i in 0..8 {
        if i > 0 && !live.is_empty() && rng.gen_bool(0.35) {
            let k = live.swap_remove(rng.gen_range(0..live.len()));
            ops.push(Op::Unsub(k));
        } else {
            let n = rng.gen_range(1..=2usize);
            let mut attrs: Vec<&'static str> = ATTRS.to_vec();
            let preds: Vec<Pred> = (0..n)
                .map(|_| {
                    let attr = attrs.remove(rng.gen_range(0..attrs.len()));
                    (
                        attr,
                        OPS[rng.gen_range(0..OPS.len())],
                        rng.gen_range(0i64..8),
                    )
                })
                .collect();
            ops.push(Op::Sub(preds));
            live.push(subs);
            subs += 1;
        }
    }
    ops
}

/// Replays `ops` against a fresh in-process broker of the same engine to
/// learn the ids the server will assign (id assignment is deterministic
/// for a given op sequence — the e2e differential suite pins that).
fn predict_ids(kind: EngineKind, ops: &[Op]) -> Vec<u32> {
    let reference = SharedBroker::new(kind, 2);
    let mut ids = Vec::new();
    for op in ops {
        match op {
            Op::Sub(preds) => {
                let preds: Vec<Predicate> = preds
                    .iter()
                    .map(|(attr, op, value)| {
                        Predicate::new(reference.attr(attr), *op, Value::Int(*value))
                    })
                    .collect();
                let id = reference.subscribe(
                    Subscription::from_predicates(preds).expect("valid spec"),
                    Validity::forever(),
                );
                ids.push(id.0);
            }
            Op::Unsub(k) => {
                reference.unsubscribe(SubscriptionId(ids[*k]));
            }
        }
    }
    ids
}

/// Encodes `ops` as request frames (req = op index + 1).
fn encode_ops(ops: &[Op], ids: &[u32]) -> Vec<Vec<u8>> {
    let mut frames = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        let req = i as u32 + 1;
        let frame = match op {
            Op::Sub(preds) => Frame::Subscribe {
                req,
                preds: preds
                    .iter()
                    .map(|(attr, op, value)| WirePredicate {
                        attr: (*attr).into(),
                        op: *op,
                        value: WireValue::Int(*value),
                    })
                    .collect(),
            },
            Op::Unsub(k) => Frame::Unsubscribe { req, id: ids[*k] },
        };
        frames.push(frame.to_bytes());
    }
    frames
}

fn read_one_frame(sock: &mut TcpStream, reader: &mut FrameReader) -> Frame {
    let mut buf = [0u8; 4096];
    loop {
        if let Some(frame) = reader.next_frame().expect("well-formed server stream") {
            return frame;
        }
        match sock.read(&mut buf) {
            Ok(0) => panic!("server closed before answering"),
            Ok(n) => reader.extend(&buf[..n]),
            Err(e) => panic!("read from server: {e}"),
        }
    }
}

fn read_frames_until_eof(sock: &mut TcpStream, reader: &mut FrameReader) -> Vec<Frame> {
    let mut buf = [0u8; 4096];
    let mut out = Vec::new();
    loop {
        while let Some(frame) = reader.next_frame().expect("well-formed server stream") {
            out.push(frame);
        }
        match sock.read(&mut buf) {
            Ok(0) => return out,
            Ok(n) => reader.extend(&buf[..n]),
            Err(e) => panic!("drain acks: {e}"),
        }
    }
}

/// Deterministic probe events published after the resume; each carries a
/// unique `eid` marker to match notifications back.
fn probe_events(rng: &mut SmallRng) -> Vec<(Vec<(&'static str, i64)>, WireEvent)> {
    (0..4)
        .map(|i| {
            let n = rng.gen_range(2..=3usize);
            let mut attrs: Vec<&'static str> = ATTRS.to_vec();
            let pairs: Vec<(&'static str, i64)> = (0..n)
                .map(|_| {
                    let attr = attrs.remove(rng.gen_range(0..attrs.len()));
                    (attr, rng.gen_range(0i64..8))
                })
                .collect();
            let mut wire: Vec<(String, WireValue)> = pairs
                .iter()
                .map(|(attr, value)| (attr.to_string(), WireValue::Int(*value)))
                .collect();
            wire.push(("eid".into(), WireValue::Int(1_000 + i)));
            (pairs, WireEvent { pairs: wire })
        })
        .collect()
}

fn eid_of(event: &WireEvent) -> i64 {
    event
        .pairs
        .iter()
        .find_map(|(attr, value)| match (attr.as_str(), value) {
            ("eid", WireValue::Int(i)) => Some(*i),
            _ => None,
        })
        .expect("probe events carry eid")
}

/// One run of the sweep: write exactly `cut` bytes of the op stream, kill
/// the connection, then verify acks, resume state, and deliveries against
/// the oracle.
fn run_one(kind: EngineKind, ops: &[Op], ids: &[u32], frames: &[Vec<u8>], cut: usize) {
    let broker = Arc::new(SharedBroker::new(kind, 2));
    let server = Server::start(Arc::clone(&broker), "127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr();

    // Handshake by hand so we control the socket byte-for-byte.
    let mut sock = TcpStream::connect(addr).expect("connect");
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = FrameReader::new();
    sock.write_all(
        &Frame::Hello {
            proto: PROTOCOL_VERSION,
            token: NEW_SESSION,
        }
        .to_bytes(),
    )
    .unwrap();
    let token = match read_one_frame(&mut sock, &mut reader) {
        Frame::Ack(Ack::Hello { token, .. }) => token,
        other => panic!("expected hello ack, got {other:?}"),
    };

    // The kill: deliver exactly `cut` bytes, then half-close. TCP hands
    // the server every byte written, so the applied ops are precisely the
    // frames fully contained in the cut.
    let bytes: Vec<u8> = frames.concat();
    sock.write_all(&bytes[..cut]).unwrap();
    sock.shutdown(Shutdown::Write).unwrap();

    // Oracle: the contiguous prefix of ops whose frames fit in the cut.
    let mut live: BTreeSet<u32> = BTreeSet::new();
    let mut applied = 0usize;
    let mut sub_idx = 0usize;
    let mut off = 0usize;
    for (i, frame) in frames.iter().enumerate() {
        off += frame.len();
        if off > cut {
            break;
        }
        applied = i + 1;
        match &ops[i] {
            Op::Sub(_) => {
                live.insert(ids[sub_idx]);
                sub_idx += 1;
            }
            Op::Unsub(k) => {
                live.remove(&ids[*k]);
            }
        }
    }

    // The graceful close flushes one ack per applied op, then EOF.
    let acks = read_frames_until_eof(&mut sock, &mut reader);
    assert_eq!(
        acks.len(),
        applied,
        "{kind:?} cut {cut}: one ack per fully-received frame"
    );
    let mut ack_sub_idx = 0usize;
    for (i, ack) in acks.iter().enumerate() {
        let req = i as u32 + 1;
        match (ack, &ops[i]) {
            (Frame::Ack(Ack::Subscribe { req: r, id }), Op::Sub(_)) => {
                assert_eq!(*r, req, "{kind:?} cut {cut}: acks arrive in request order");
                assert_eq!(
                    *id, ids[ack_sub_idx],
                    "{kind:?} cut {cut}: prefix ids match the full-run ids"
                );
                ack_sub_idx += 1;
            }
            (Frame::Ack(Ack::Unsubscribe { req: r, existed }), Op::Unsub(_)) => {
                assert_eq!(*r, req);
                assert!(*existed, "{kind:?} cut {cut}: unsubscribed a live id");
            }
            (other, _) => panic!("{kind:?} cut {cut}: unexpected ack {other:?}"),
        }
    }

    // Resume: exactly the surviving ids, each reported once, no ghosts.
    let mut subscriber = Client::resume(addr, token).expect("resume");
    let expected: Vec<u32> = live.iter().copied().collect();
    assert_eq!(
        subscriber.resumed(),
        &expected[..],
        "{kind:?} cut {cut}: resumed ids must equal the oracle's live set"
    );
    let status = server.status();
    assert_eq!(status.sessions, 1, "{kind:?} cut {cut}: one session");
    assert_eq!(
        status.attached, 1,
        "{kind:?} cut {cut}: the dead connection must not linger"
    );
    assert_eq!(
        status.net_subscriptions,
        expected.len(),
        "{kind:?} cut {cut}: registry tracks exactly the live subscriptions"
    );

    // Probe deliveries: publishes must match the brute-force oracle over
    // the surviving subscriptions, and reach the resumed connection.
    let sub_specs: Vec<(u32, &Vec<Pred>)> = {
        let mut sub_ops = ops.iter().filter_map(|op| match op {
            Op::Sub(preds) => Some(preds),
            Op::Unsub(_) => None,
        });
        let mut out = Vec::new();
        for (k, preds) in (&mut sub_ops).enumerate() {
            if live.contains(&ids[k]) {
                out.push((ids[k], preds));
            }
        }
        out
    };
    let mut publisher = Client::connect(addr).expect("connect publisher");
    let mut probe_rng = SmallRng::seed_from_u64(cut as u64 ^ 0x9e37);
    for (pairs, wire) in probe_events(&mut probe_rng) {
        let eid = eid_of(&wire);
        let matched = publisher.publish(wire).expect("probe publish");
        let brute: Vec<u32> = sub_specs
            .iter()
            .filter(|(_, preds)| matches(preds, &pairs))
            .map(|(id, _)| *id)
            .collect();
        assert_eq!(
            matched as usize,
            brute.len(),
            "{kind:?} cut {cut}: matched count vs brute force on eid {eid}"
        );
        if !brute.is_empty() {
            let n = subscriber
                .next_notify(Duration::from_secs(5))
                .expect("notify stream")
                .expect("matched publish must be delivered");
            assert_eq!(eid_of(&n.event), eid, "{kind:?} cut {cut}: delivery order");
            assert_eq!(n.ids, brute, "{kind:?} cut {cut}: delivered ids");
        }
    }
    // Nothing else may arrive: no duplicate deliveries, no ghost streams.
    let extra = subscriber.next_notify(Duration::from_millis(30)).unwrap();
    assert!(extra.is_none(), "{kind:?} cut {cut}: spurious {extra:?}");
    server.shutdown();
}

/// Cuts at every frame boundary (including 0 and the full stream) plus the
/// middle of every frame.
fn sweep(kind: EngineKind, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let ops = build_ops(&mut rng);
    let ids = predict_ids(kind, &ops);
    let frames = encode_ops(&ops, &ids);
    let mut cuts: Vec<usize> = vec![0];
    let mut off = 0usize;
    for frame in &frames {
        cuts.push(off + frame.len() / 2); // mid-frame: torn header or body
        off += frame.len();
        cuts.push(off); // frame boundary
    }
    for cut in cuts {
        run_one(kind, &ops, &ids, &frames, cut);
    }
}

#[test]
fn kill_anywhere_counting() {
    sweep(EngineKind::Counting, 0xA11CE);
}

#[test]
fn kill_anywhere_propagation() {
    sweep(EngineKind::Propagation, 0xB0B);
}

#[test]
fn kill_anywhere_propagation_prefetch() {
    sweep(EngineKind::PropagationPrefetch, 0xCAFE);
}

#[test]
fn kill_anywhere_static() {
    sweep(EngineKind::Static, 0xDEED);
}

#[test]
fn kill_anywhere_dynamic() {
    sweep(EngineKind::Dynamic, 0xFEED);
}

/// Resuming a session from a second connection kicks the first: exactly
/// one connection ever speaks for a session, and the kicked peer observes
/// a dead socket rather than silently sharing the stream.
#[test]
fn resume_kicks_the_previous_connection() {
    let broker = Arc::new(SharedBroker::new(EngineKind::Counting, 2));
    let server = Server::start(Arc::clone(&broker), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    let mut first = Client::connect(addr).expect("connect");
    let id = first
        .subscribe(vec![WirePredicate {
            attr: "k".into(),
            op: Operator::Eq,
            value: WireValue::Int(1),
        }])
        .expect("subscribe");
    let token = first.token();

    let mut second = Client::resume(addr, token).expect("resume");
    assert_eq!(second.resumed(), &[id], "resume reports the live id once");

    // The kicked connection is dead: its next read errors out.
    let first_read = first.next_notify(Duration::from_secs(5));
    assert!(
        first_read.is_err(),
        "kicked connection must observe a dead socket, got {first_read:?}"
    );

    // Exactly one attachment; deliveries go to the survivor exactly once.
    assert_eq!(server.status().attached, 1, "no ghost attachment");
    let mut publisher = Client::connect(addr).expect("connect publisher");
    let matched = publisher
        .publish(WireEvent {
            pairs: vec![("k".into(), WireValue::Int(1))],
        })
        .expect("publish");
    assert_eq!(matched, 1);
    let n = second
        .next_notify(Duration::from_secs(5))
        .expect("stream")
        .expect("delivery reaches the surviving connection");
    assert_eq!(n.ids, vec![id]);
    assert_eq!(n.seq, 1);
    let extra = second.next_notify(Duration::from_millis(30)).unwrap();
    assert!(extra.is_none(), "exactly-once delivery, got {extra:?}");
    server.shutdown();
}

/// An unknown token is a typed error, not a fresh session — resuming is
/// never allowed to invent state.
#[test]
fn unknown_token_is_rejected() {
    let broker = Arc::new(SharedBroker::new(EngineKind::Counting, 2));
    let server = Server::start(Arc::clone(&broker), "127.0.0.1:0").expect("bind");
    let err = match Client::resume(server.local_addr(), 0xDEAD_BEEF) {
        Err(err) => err,
        Ok(_) => panic!("resuming an unknown token must fail"),
    };
    assert!(
        matches!(
            &err,
            pubsub_net::ClientError::Server {
                code: pubsub_net::ErrorCode::UnknownSession,
                ..
            }
        ),
        "got {err:?}"
    );
    assert_eq!(server.status().sessions, 0, "no session invented");
    server.shutdown();
}
