//! Predicate indexing substrate for `fastpubsub` — phase 1 of the paper's
//! two-phase matching algorithm.
//!
//! Contents:
//!
//! * [`bptree`] — a from-scratch arena-based B+-tree with linked leaves,
//!   the "simple B-Trees for inequalities" of paper §2.3.
//! * [`bitvec`] — the predicate bit vector of Figure 1, with O(touched)
//!   clearing.
//! * [`registry`] — predicate interning with reference counts, the
//!   per-attribute equality / inequality / `≠` indexes, and the phase-1
//!   evaluator [`PredicateIndex::eval_into`].
//! * [`snapshot`] — the flat snapshot index for ordered predicates: sorted
//!   breakpoint arrays whose satisfied set per event value is one contiguous
//!   run per direction, with a delta overlay and merge-rebuilds. This is the
//!   structure [`PredicateIndex::eval_into`] actually reads on the hot path;
//!   the B+-tree remains the reference implementation
//!   ([`PredicateIndex::eval_into_btree`]).
//! * [`kernels`] — word-parallel lower-bound kernels (portable
//!   auto-vectorized default, `std::arch` SSE2/AVX2 behind the `simd`
//!   feature) backing the batched evaluator
//!   [`PredicateIndex::eval_batch_into`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod bitvec;
pub mod bptree;
pub mod kernels;
pub mod registry;
pub mod snapshot;

pub use bitvec::PredicateBitVec;
pub use bptree::BPlusTree;
pub use registry::{Phase1Batch, PredicateId, PredicateIndex};
