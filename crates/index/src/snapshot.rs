//! Flat snapshot index for ordered predicates — the cache-conscious phase-1
//! fast path.
//!
//! The B+-tree interval index ([`crate::bptree`]) answers an event pair with
//! two leaf walks that chase pointers and test four `Option` slots per key.
//! This module flattens each attribute's ordered predicates into immutable
//! sorted arrays where the satisfied set for any event value is **one
//! contiguous run per direction**, so evaluation is a branchless binary
//! search plus a bulk bit-set:
//!
//! ```text
//!              upper direction (<, ≤)            lower direction (≥, >)
//!   keys: [(c0,r) (c1,r) (c2,r) (c3,r) …]   [(c0,r) (c1,r) (c2,r) …]
//!   ids:  [ p17    p4     p9     p23   …]   [ p3     p11    p6    …]
//!                  ▲______________________          ▲________
//!                  satisfied = suffix run           satisfied = prefix run
//! ```
//!
//! *Run space*: positions in the sorted array. The parallel `ids` vector is
//! the remap table from run space back to real [`PredicateId`]s; a run
//! `[lo, hi)` is resolved with `ids[lo..hi]`, which feeds
//! [`PredicateBitVec::set_from_slice`] and `Vec::extend_from_slice` directly.
//!
//! Within one direction the two operators are merged by a tie-break rank so
//! a single search serves both: for the upper direction `<` sorts before `≤`
//! at equal constants (rank 0 vs 1), and the satisfied set is exactly the
//! suffix starting at `partition_point(key < (x, 1))`; symmetrically the
//! lower direction (`≥` rank 0, `>` rank 1) is the prefix ending there.
//!
//! **Mutations** do not rewrite the snapshot. Inserts go to a small sorted
//! delta overlay (searched the same way at eval time); removals of
//! snapshot-resident predicates record a *tombstone position*, and the run is
//! emitted as segments around tombstones. Once an attribute's pending
//! mutation count exceeds [`rebuild_threshold`], the snapshot and delta are
//! merge-rebuilt in one O(n) pass — so steady-state matching never touches
//! the B+-tree, and churn costs amortized O(1) per mutation.
//!
//! **Batch-major evaluation** (`eval_batch_into`): callers hand over a whole
//! batch's `(value, event slot)` pairs sorted ascending. Because boundaries
//! of an ascending value sequence are monotone, each direction's breakpoint
//! array is walked *once per batch*: an exponential gallop brackets every
//! boundary and a word-parallel lower bound ([`crate::kernels`]) resolves it
//! inside the bracket. Each rebuild also precomputes, per 64-position block
//! of the remap table, the `(bit-vector word, mask)` pairs covering that
//! block's ids — so a satisfied run sets its bits with one OR per touched
//! word (partial head/tail blocks go per-id), instead of one mask merge per
//! id. Tombstones patch the affected block mask in place, keeping the
//! full-block ORs exact between rebuilds.

use crate::bitvec::PredicateBitVec;
use crate::kernels::{self, SnapKey};
use crate::registry::PredicateId;
use pubsub_types::Operator;

/// Remap-table positions covered by one precomputed block of word masks.
const BLOCK: usize = 64;

/// Pending mutations (delta inserts + tombstones) an attribute's direction
/// may accumulate before its snapshot is merge-rebuilt.
///
/// Proportional to the snapshot so rebuilds amortize to O(1) per mutation,
/// floored so tiny attributes don't rebuild on every insert, and capped so
/// the sorted-insert memmove and the eval-time overlay stay cache-resident.
pub fn rebuild_threshold(snapshot_len: usize) -> usize {
    (32 + snapshot_len / 8).min(1024)
}

/// One direction of one attribute: sorted `(constant, rank)` breakpoints, the
/// run-space → predicate-id remap table, tombstones, and the delta overlay.
#[derive(Debug, Default, Clone)]
struct DirectionIndex<K> {
    /// Sorted breakpoints; position in this vector is the run space.
    keys: Vec<(K, u8)>,
    /// Remap table, parallel to `keys`.
    ids: Vec<PredicateId>,
    /// Sorted positions in `keys` whose predicate was released since the
    /// last rebuild.
    tombs: Vec<u32>,
    /// Sorted overlay of breakpoints inserted since the last rebuild.
    delta_keys: Vec<(K, u8)>,
    /// Remap table of the overlay, parallel to `delta_keys`.
    delta_ids: Vec<PredicateId>,
    /// Order-preserving `u64` encodings of `keys`, parallel; the operand of
    /// the word-parallel lower-bound kernels on the batched path.
    enc: Vec<u64>,
    /// CSR offsets into `block_entries`: block `b`'s mask entries live at
    /// `block_entries[block_starts[b]..block_starts[b + 1]]`.
    block_starts: Vec<u32>,
    /// Per-block precomputed `(bit-vector word, mask)` pairs covering the
    /// ids in that block of the remap table, patched on tombstone/revival.
    block_entries: Vec<(u32, u64)>,
}

impl<K: SnapKey> DirectionIndex<K> {
    fn pending(&self) -> usize {
        self.tombs.len() + self.delta_keys.len()
    }

    fn live_len(&self) -> usize {
        self.keys.len() - self.tombs.len() + self.delta_keys.len()
    }

    /// Registers a predicate. If the same breakpoint was tombstoned since the
    /// last rebuild, the snapshot slot is revived in place (the remap entry
    /// is rewritten — the released id may have been recycled elsewhere);
    /// otherwise the breakpoint joins the sorted delta overlay.
    fn insert(&mut self, key: (K, u8), id: PredicateId) {
        if let Ok(p) = self.keys.binary_search(&key) {
            let t = self
                .tombs
                .binary_search(&(p as u32))
                .expect("re-inserted breakpoint must be tombstoned (interning dedups live ones)");
            self.tombs.remove(t);
            self.ids[p] = id;
            self.block_bit(p, id, true);
            return;
        }
        let at = self
            .delta_keys
            .binary_search(&key)
            .expect_err("breakpoint already present in delta overlay");
        self.delta_keys.insert(at, key);
        self.delta_ids.insert(at, id);
    }

    /// Unregisters a predicate: dropped from the delta if it never made it
    /// into a snapshot, tombstoned otherwise.
    fn remove(&mut self, key: (K, u8)) {
        if let Ok(d) = self.delta_keys.binary_search(&key) {
            self.delta_keys.remove(d);
            self.delta_ids.remove(d);
            return;
        }
        let p = self
            .keys
            .binary_search(&key)
            .expect("removed breakpoint must exist") as u32;
        let t = self
            .tombs
            .binary_search(&p)
            .expect_err("breakpoint already tombstoned");
        self.tombs.insert(t, p);
        self.block_bit(p as usize, self.ids[p as usize], false);
    }

    /// Sets or clears one id's bit in its block's mask entries — the
    /// tombstone/revival patch that keeps full-block ORs exact between
    /// rebuilds. Mutation path only; never on the matching path.
    fn block_bit(&mut self, p: usize, id: PredicateId, set: bool) {
        let b = p / BLOCK;
        let (s, e) = (
            self.block_starts[b] as usize,
            self.block_starts[b + 1] as usize,
        );
        let w = id.0 / 64;
        let bit = 1u64 << (id.0 % 64);
        if let Some(entry) = self.block_entries[s..e].iter_mut().find(|e| e.0 == w) {
            if set {
                entry.1 |= bit;
            } else {
                entry.1 &= !bit;
            }
            return;
        }
        debug_assert!(set, "clearing a bit its block never carried");
        // A revived slot's recycled id can land in a word no other id of
        // this block occupies: splice a fresh entry in (rare, mutation-path).
        self.block_entries.insert(e, (w, bit));
        for start in &mut self.block_starts[b + 1..] {
            *start += 1;
        }
    }

    /// Merges snapshot-minus-tombstones with the delta overlay into a fresh
    /// snapshot. O(keys + delta), no tree involved.
    fn rebuild(&mut self) {
        let mut keys = Vec::with_capacity(self.live_len());
        let mut ids = Vec::with_capacity(self.live_len());
        let mut t = 0usize;
        let mut d = 0usize;
        for (p, (&k, &id)) in self.keys.iter().zip(&self.ids).enumerate() {
            if t < self.tombs.len() && self.tombs[t] as usize == p {
                t += 1;
                continue;
            }
            while d < self.delta_keys.len() && self.delta_keys[d] < k {
                keys.push(self.delta_keys[d]);
                ids.push(self.delta_ids[d]);
                d += 1;
            }
            keys.push(k);
            ids.push(id);
        }
        keys.extend_from_slice(&self.delta_keys[d..]);
        ids.extend_from_slice(&self.delta_ids[d..]);
        self.keys = keys;
        self.ids = ids;
        self.tombs.clear();
        self.delta_keys.clear();
        self.delta_ids.clear();
        self.rebuild_accel();
    }

    /// Rebuilds the encoded-key array and the per-block word masks from the
    /// freshly merged snapshot (`keys`/`ids`, tombstone-free at this point).
    fn rebuild_accel(&mut self) {
        self.enc.clear();
        self.enc.extend(self.keys.iter().map(|&(k, _)| k.encode()));
        let blocks = self.ids.len().div_ceil(BLOCK);
        self.block_entries.clear();
        self.block_starts.clear();
        self.block_starts.push(0);
        for b in 0..blocks {
            let lo = b * BLOCK;
            let hi = ((b + 1) * BLOCK).min(self.ids.len());
            let start = self.block_entries.len();
            for &id in &self.ids[lo..hi] {
                let w = id.0 / 64;
                let bit = 1u64 << (id.0 % 64);
                // Ids are distinct but unsorted within a block; a linear
                // merge over ≤ 64 candidate entries keeps this allocation-
                // free and is amortized into the O(n) rebuild.
                match self.block_entries[start..].iter_mut().find(|e| e.0 == w) {
                    Some(entry) => entry.1 |= bit,
                    None => self.block_entries.push((w, bit)),
                }
            }
            self.block_starts.push(self.block_entries.len() as u32);
        }
    }

    /// Walks `[lo, hi)` of the snapshot split around tombstones, invoking
    /// `f` on each maximal live segment.
    fn for_each_live_segment(&self, lo: usize, hi: usize, mut f: impl FnMut(usize, usize)) {
        let mut a = lo;
        let first = self.tombs.partition_point(|&p| (p as usize) < lo);
        for &p in &self.tombs[first..] {
            let p = p as usize;
            if p >= hi {
                break;
            }
            if p > a {
                f(a, p);
            }
            a = p + 1;
        }
        if a < hi {
            f(a, hi);
        }
    }

    /// Emits the run `[lo, hi)` of the snapshot remap table, split around
    /// tombstones, via the bulk bit-set path.
    fn emit_run(
        &self,
        lo: usize,
        hi: usize,
        bits: &mut PredicateBitVec,
        satisfied: &mut Vec<PredicateId>,
    ) {
        self.for_each_live_segment(lo, hi, |a, b| {
            bits.set_from_slice(&self.ids[a..b]);
            satisfied.extend_from_slice(&self.ids[a..b]);
        });
    }

    /// Emits the run `[lo, hi)` like [`DirectionIndex::emit_run`], but sets
    /// bits word-parallel through the precomputed block masks: every fully
    /// covered block is one [`PredicateBitVec::or_masks`] pass (tombstone
    /// patches already applied), only the partial head and tail go per-id.
    /// The satisfied-id list is still contiguous `memcpy`s per live segment.
    fn emit_run_blocks(
        &self,
        lo: usize,
        hi: usize,
        bits: &mut PredicateBitVec,
        satisfied: &mut Vec<PredicateId>,
    ) {
        if lo >= hi {
            return;
        }
        self.for_each_live_segment(lo, hi, |a, b| {
            satisfied.extend_from_slice(&self.ids[a..b]);
        });
        let first_full = lo.div_ceil(BLOCK);
        let last_full = hi / BLOCK;
        if first_full < last_full {
            self.set_bits_per_id(lo, first_full * BLOCK, bits);
            let s = self.block_starts[first_full] as usize;
            let e = self.block_starts[last_full] as usize;
            bits.or_masks(&self.block_entries[s..e]);
            self.set_bits_per_id(last_full * BLOCK, hi, bits);
        } else {
            self.set_bits_per_id(lo, hi, bits);
        }
    }

    /// Per-id bit fallback for the partial blocks at a run's edges,
    /// skipping tombstoned positions.
    fn set_bits_per_id(&self, lo: usize, hi: usize, bits: &mut PredicateBitVec) {
        self.for_each_live_segment(lo, hi, |a, b| {
            bits.set_from_slice(&self.ids[a..b]);
        });
    }

    /// The boundary `partition_point(keys < (x, 1))`, computed from position
    /// `from` onward — valid whenever every position below `from` sorts
    /// below `(x, 0)`, which monotone batched probes guarantee. An
    /// exponential gallop brackets the boundary, a word-parallel lower
    /// bound resolves it inside the bracket, and the rank fix-up accounts
    /// for a rank-0 key at the landing spot (an `(x, 0)` key sorts below
    /// the probe `(x, 1)`; interning guarantees at most one per constant).
    fn boundary_from(&self, from: usize, x: K) -> usize {
        let target = x.encode();
        let enc = &self.enc;
        let n = enc.len();
        if from >= n || enc[from] >= target {
            return self.rank_fixup(from, x);
        }
        let mut lo = from;
        let mut step = 1usize;
        let hi = loop {
            let probe = lo + step;
            if probe >= n {
                break n;
            }
            if enc[probe] < target {
                lo = probe;
                step <<= 1;
            } else {
                break probe;
            }
        };
        let lb = lo + 1 + kernels::lower_bound_u64(&enc[lo + 1..hi], target);
        self.rank_fixup(lb, x)
    }

    #[inline]
    fn rank_fixup(&self, lb: usize, x: K) -> usize {
        lb + usize::from(self.keys.get(lb).is_some_and(|&(k, r)| k == x && r == 0))
    }

    /// Batched boundary scan: `sorted` holds `(value, event slot)` pairs in
    /// ascending value order, so boundaries are monotone and the breakpoint
    /// array is traversed once for the whole batch. Equal values share one
    /// boundary computation. Instead of emitting, invokes
    /// `f(event slot, snapshot boundary, delta boundary)` for every event
    /// whose run is non-empty — the caller records the boundaries and
    /// materializes each event's output later (cache-hot, one event at a
    /// time) via [`DirectionIndex::emit_recorded`].
    fn eval_batch_runs(&self, sorted: &[(K, u32)], suffix: bool, mut f: impl FnMut(u32, u32, u32)) {
        let n = self.keys.len();
        // (value, snapshot boundary, delta boundary) of the previous probe.
        let mut prev: Option<(K, usize, usize)> = None;
        for &(x, ev) in sorted {
            let (b, d) = match prev {
                Some((px, b, d)) if px == x => (b, d),
                _ => {
                    let from = prev.map_or(0, |(_, b, _)| b);
                    let b = self.boundary_from(from, x);
                    let d = self.delta_keys.partition_point(|k| *k < (x, 1u8));
                    prev = Some((x, b, d));
                    (b, d)
                }
            };
            let empty = if suffix {
                b >= n && d >= self.delta_ids.len()
            } else {
                b == 0 && d == 0
            };
            if !empty {
                f(ev, b as u32, d as u32);
            }
        }
    }

    /// Emits the output a recorded `(b, d)` boundary pair stands for: the
    /// snapshot run on `suffix`'s side of `b` (word-parallel through the
    /// block masks) plus the matching slice of the delta overlay. Boundaries
    /// are only valid against the exact index state they were recorded from
    /// ([`DirectionIndex::eval_batch_runs`]); any mutation in between
    /// invalidates them.
    fn emit_recorded(
        &self,
        suffix: bool,
        b: usize,
        d: usize,
        bits: &mut PredicateBitVec,
        sat: &mut Vec<PredicateId>,
    ) {
        if suffix {
            self.emit_run_blocks(b, self.keys.len(), bits, sat);
            if d < self.delta_ids.len() {
                bits.set_from_slice(&self.delta_ids[d..]);
                sat.extend_from_slice(&self.delta_ids[d..]);
            }
        } else {
            self.emit_run_blocks(0, b, bits, sat);
            if d > 0 {
                bits.set_from_slice(&self.delta_ids[..d]);
                sat.extend_from_slice(&self.delta_ids[..d]);
            }
        }
    }

    /// Evaluates an event value: one branchless binary search per array, then
    /// bulk-emits the satisfied run (`suffix` picks the direction's shape).
    fn eval(
        &self,
        x: K,
        suffix: bool,
        bits: &mut PredicateBitVec,
        satisfied: &mut Vec<PredicateId>,
    ) {
        let probe = (x, 1u8);
        if !self.keys.is_empty() {
            let b = self.keys.partition_point(|k| *k < probe);
            if suffix {
                self.emit_run(b, self.keys.len(), bits, satisfied);
            } else {
                self.emit_run(0, b, bits, satisfied);
            }
        }
        if !self.delta_keys.is_empty() {
            let b = self.delta_keys.partition_point(|k| *k < probe);
            let (lo, hi) = if suffix {
                (b, self.delta_keys.len())
            } else {
                (0, b)
            };
            if lo < hi {
                bits.set_from_slice(&self.delta_ids[lo..hi]);
                satisfied.extend_from_slice(&self.delta_ids[lo..hi]);
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<(K, u8)>()
            + self.delta_keys.capacity() * std::mem::size_of::<(K, u8)>()
            + (self.ids.capacity() + self.delta_ids.capacity() + self.tombs.capacity()) * 4
            + self.enc.capacity() * 8
            + self.block_starts.capacity() * 4
            + self.block_entries.capacity() * std::mem::size_of::<(u32, u64)>()
    }
}

/// The snapshot evaluator for the ordered predicates of one attribute and one
/// key kind (integers or interned-string symbols).
#[derive(Debug, Default, Clone)]
pub(crate) struct OrderedSnapshot<K> {
    /// `<` (rank 0) and `≤` (rank 1): satisfied ids are a suffix run.
    upper: DirectionIndex<K>,
    /// `≥` (rank 0) and `>` (rank 1): satisfied ids are a prefix run.
    lower: DirectionIndex<K>,
    /// Generation counter: number of merge-rebuilds performed.
    rebuilds: u64,
}

/// `(direction is upper, tie-break rank)` for an ordered operator.
fn direction_rank(op: Operator) -> (bool, u8) {
    match op {
        Operator::Lt => (true, 0),
        Operator::Le => (true, 1),
        Operator::Ge => (false, 0),
        Operator::Gt => (false, 1),
        _ => unreachable!("snapshot stores only ordered operators"),
    }
}

impl<K: SnapKey> OrderedSnapshot<K> {
    /// Registers an ordered predicate; rebuilds the affected direction if its
    /// pending-mutation budget is exhausted.
    pub(crate) fn insert(&mut self, op: Operator, key: K, id: PredicateId) {
        let (upper, rank) = direction_rank(op);
        let dir = if upper {
            &mut self.upper
        } else {
            &mut self.lower
        };
        dir.insert((key, rank), id);
        if dir.pending() > rebuild_threshold(dir.keys.len()) {
            dir.rebuild();
            self.rebuilds += 1;
        }
    }

    /// Unregisters an ordered predicate; same rebuild policy as insert.
    pub(crate) fn remove(&mut self, op: Operator, key: K) {
        let (upper, rank) = direction_rank(op);
        let dir = if upper {
            &mut self.upper
        } else {
            &mut self.lower
        };
        dir.remove((key, rank));
        if dir.pending() > rebuild_threshold(dir.keys.len()) {
            dir.rebuild();
            self.rebuilds += 1;
        }
    }

    /// True when neither direction holds any breakpoints (snapshot or
    /// delta). The batched evaluator uses this to skip collecting and
    /// sorting an attribute's values when there is nothing to scan —
    /// equality-only attributes would otherwise pay the sort for no runs.
    pub(crate) fn is_empty(&self) -> bool {
        self.upper.keys.is_empty()
            && self.upper.delta_keys.is_empty()
            && self.lower.keys.is_empty()
            && self.lower.delta_keys.is_empty()
    }

    /// Sets the bit and appends the id of every ordered predicate satisfied
    /// by event value `x`: two binary searches, two bulk runs.
    #[inline]
    pub(crate) fn eval_into(
        &self,
        x: K,
        bits: &mut PredicateBitVec,
        satisfied: &mut Vec<PredicateId>,
    ) {
        self.upper.eval(x, true, bits, satisfied);
        self.lower.eval(x, false, bits, satisfied);
    }

    /// Batched boundary scan over both directions: `sorted` is the batch's
    /// `(value, event slot)` pairs in ascending value order, traversed once
    /// per direction for the whole batch. Invokes `f(suffix, event slot,
    /// snapshot boundary, delta boundary)` for each non-empty per-event run;
    /// the recorded boundaries are materialized later through
    /// [`OrderedSnapshot::emit_recorded`]. Recording plus materializing is
    /// exactly equivalent to calling `eval_into` per event, as long as the
    /// snapshot is not mutated in between.
    pub(crate) fn record_batch_runs(
        &self,
        sorted: &[(K, u32)],
        mut f: impl FnMut(bool, u32, u32, u32),
    ) {
        if sorted.is_empty() {
            return;
        }
        self.upper
            .eval_batch_runs(sorted, true, |ev, b, d| f(true, ev, b, d));
        self.lower
            .eval_batch_runs(sorted, false, |ev, b, d| f(false, ev, b, d));
    }

    /// Materializes one recorded run: emits the satisfied ids and bits that
    /// the `(suffix, b, d)` boundaries recorded by
    /// [`OrderedSnapshot::record_batch_runs`] stand for.
    pub(crate) fn emit_recorded(
        &self,
        suffix: bool,
        b: u32,
        d: u32,
        bits: &mut PredicateBitVec,
        sat: &mut Vec<PredicateId>,
    ) {
        let dir = if suffix { &self.upper } else { &self.lower };
        dir.emit_recorded(suffix, b as usize, d as usize, bits, sat);
    }

    /// Batched variant of [`OrderedSnapshot::eval_into`]: `sorted` is the
    /// batch's `(value, event slot)` pairs in ascending value order; each
    /// event's satisfied ids and bits land in its slot of `sat`/`bits`.
    /// Exactly equivalent to calling `eval_into` per event. (Record +
    /// immediate materialize; the registry's [`crate::Phase1Batch`] path
    /// defers materialization instead.)
    #[cfg(test)]
    pub(crate) fn eval_batch_into(
        &self,
        sorted: &[(K, u32)],
        sat: &mut [Vec<PredicateId>],
        bits: &mut [PredicateBitVec],
    ) {
        self.record_batch_runs(sorted, |suffix, ev, b, d| {
            self.emit_recorded(suffix, b, d, &mut bits[ev as usize], &mut sat[ev as usize]);
        });
    }

    /// Merges any pending delta/tombstones into the snapshots now (e.g.
    /// after a bulk load, so the first events already run tombstone-free).
    pub(crate) fn flush(&mut self) {
        for dir in [&mut self.upper, &mut self.lower] {
            if dir.pending() > 0 {
                dir.rebuild();
                self.rebuilds += 1;
            }
        }
    }

    /// Number of merge-rebuilds performed so far (diagnostics and tests).
    pub(crate) fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Heap bytes held by the snapshot arrays and overlays.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.upper.heap_bytes() + self.lower.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_ids(snap: &OrderedSnapshot<i64>, x: i64) -> Vec<u32> {
        let mut bits = PredicateBitVec::with_capacity(1 << 16);
        let mut sat = Vec::new();
        snap.eval_into(x, &mut bits, &mut sat);
        let mut raw: Vec<u32> = sat.iter().map(|id| id.0).collect();
        // Every emitted id must also have its bit set.
        for id in &sat {
            assert!(bits.get(id.0));
        }
        raw.sort_unstable();
        raw
    }

    /// Brute-force oracle over `(op, constant, id)` triples.
    fn oracle(preds: &[(Operator, i64, u32)], x: i64) -> Vec<u32> {
        let mut out: Vec<u32> = preds
            .iter()
            .filter(|&&(op, c, _)| match op {
                Operator::Lt => x < c,
                Operator::Le => x <= c,
                Operator::Ge => x >= c,
                Operator::Gt => x > c,
                _ => unreachable!(),
            })
            .map(|&(_, _, id)| id)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn all_operators_all_boundaries() {
        let mut snap = OrderedSnapshot::<i64>::default();
        let mut preds = Vec::new();
        let mut next = 0u32;
        for op in [Operator::Lt, Operator::Le, Operator::Ge, Operator::Gt] {
            for c in [10i64, 20, 30] {
                snap.insert(op, c, PredicateId(next));
                preds.push((op, c, next));
                next += 1;
            }
        }
        for x in [-5i64, 9, 10, 11, 20, 25, 30, 31, 100] {
            assert_eq!(eval_ids(&snap, x), oracle(&preds, x), "x = {x}");
        }
    }

    #[test]
    fn removal_tombstones_split_the_run() {
        let mut snap = OrderedSnapshot::<i64>::default();
        for c in 0..10i64 {
            snap.insert(Operator::Le, c, PredicateId(c as u32));
        }
        // Force everything into the snapshot arrays, then tombstone from the
        // middle of the run.
        snap.flush();
        snap.remove(Operator::Le, 4);
        snap.remove(Operator::Le, 7);
        let got = eval_ids(&snap, 2);
        assert_eq!(got, vec![2, 3, 5, 6, 8, 9], "x ≤ c run minus tombstones");
    }

    #[test]
    fn reinsert_after_tombstone_revives_slot_with_new_id() {
        let mut snap = OrderedSnapshot::<i64>::default();
        snap.insert(Operator::Ge, 5, PredicateId(0));
        snap.flush();
        snap.remove(Operator::Ge, 5);
        assert!(eval_ids(&snap, 9).is_empty());
        // Same breakpoint returns under a recycled (different) id.
        snap.insert(Operator::Ge, 5, PredicateId(42));
        assert_eq!(eval_ids(&snap, 9), vec![42]);
        assert!(eval_ids(&snap, 4).is_empty());
    }

    #[test]
    fn delta_overlay_and_snapshot_merge_agree_with_oracle() {
        let mut snap = OrderedSnapshot::<i64>::default();
        let mut preds = Vec::new();
        // Interleave inserts and removes way past the rebuild threshold so
        // the test exercises delta-resident, tombstoned, and merged states.
        let mut next = 0u32;
        for round in 0..3 {
            for i in 0..100i64 {
                let op = [Operator::Lt, Operator::Le, Operator::Ge, Operator::Gt]
                    [(i as usize + round) % 4];
                let c = (i * 7 + round as i64 * 13) % 200;
                if preds.iter().any(|&(o, k, _)| (o, k) == (op, c)) {
                    continue;
                }
                snap.insert(op, c, PredicateId(next));
                preds.push((op, c, next));
                next += 1;
            }
            // Remove every third registered predicate.
            let victims: Vec<(Operator, i64, u32)> = preds.iter().copied().step_by(3).collect();
            for (op, c, _) in &victims {
                snap.remove(*op, *c);
            }
            preds.retain(|p| !victims.contains(p));
            for x in [-1i64, 0, 50, 99, 137, 200] {
                assert_eq!(eval_ids(&snap, x), oracle(&preds, x), "round {round} x {x}");
            }
        }
        assert!(snap.rebuilds() > 0, "churn volume must trigger rebuilds");
    }

    #[test]
    fn flush_merges_pending_state() {
        let mut snap = OrderedSnapshot::<i64>::default();
        for c in 0..20i64 {
            snap.insert(Operator::Lt, c, PredicateId(c as u32));
        }
        snap.remove(Operator::Lt, 3);
        let before = eval_ids(&snap, -1);
        let gens = snap.rebuilds();
        snap.flush();
        assert!(snap.rebuilds() > gens);
        assert_eq!(eval_ids(&snap, -1), before, "flush must not change results");
        snap.flush();
        assert_eq!(snap.rebuilds(), gens + 1, "idle flush is a no-op");
    }

    /// Evaluates `xs` through the batched entry point (sorted batch, one
    /// slot each) and checks every slot against the per-event path.
    fn assert_batched_matches_scalar(snap: &OrderedSnapshot<i64>, xs: &[i64]) {
        let mut sorted: Vec<(i64, u32)> =
            xs.iter().enumerate().map(|(i, &x)| (x, i as u32)).collect();
        sorted.sort_unstable();
        let mut sat: Vec<Vec<PredicateId>> = vec![Vec::new(); xs.len()];
        let mut bits: Vec<PredicateBitVec> = (0..xs.len())
            .map(|_| PredicateBitVec::with_capacity(1 << 16))
            .collect();
        snap.eval_batch_into(&sorted, &mut sat, &mut bits);
        for (i, &x) in xs.iter().enumerate() {
            let mut got: Vec<u32> = sat[i].iter().map(|id| id.0).collect();
            for id in &sat[i] {
                assert!(
                    bits[i].get(id.0),
                    "x = {x}: emitted id {} lacks its bit",
                    id.0
                );
            }
            assert_eq!(
                bits[i].count_ones(),
                sat[i].len(),
                "x = {x}: stray bits beyond the satisfied set"
            );
            got.sort_unstable();
            assert_eq!(got, eval_ids(snap, x), "x = {x}");
        }
    }

    #[test]
    fn batched_agrees_with_scalar_across_blocks_and_operators() {
        // Enough breakpoints that runs span multiple full 64-position
        // blocks, exercising the precomputed-mask path.
        let mut snap = OrderedSnapshot::<i64>::default();
        let mut next = 0u32;
        for op in [Operator::Lt, Operator::Le, Operator::Ge, Operator::Gt] {
            for c in 0..200i64 {
                snap.insert(op, c, PredicateId(next));
                next += 1;
            }
        }
        snap.flush();
        assert_batched_matches_scalar(&snap, &[-1, 0, 1, 63, 64, 100, 150, 199, 200, 100, 0]);
    }

    #[test]
    fn batched_handles_tombstones_and_revivals_mid_block() {
        let mut snap = OrderedSnapshot::<i64>::default();
        for c in 0..300i64 {
            snap.insert(Operator::Le, c, PredicateId(c as u32));
        }
        snap.flush();
        // Tombstones inside fully covered blocks must not set their bits.
        for c in [10i64, 70, 71, 140, 299] {
            snap.remove(Operator::Le, c);
        }
        assert_batched_matches_scalar(&snap, &[0, 5, 69, 72, 139, 141, 250, 299, 300]);
        // Revive one under a recycled id landing in a fresh word.
        snap.insert(Operator::Le, 140, PredicateId(5000));
        assert_batched_matches_scalar(&snap, &[0, 100, 140, 141, 299]);
    }

    #[test]
    fn batched_sees_delta_overlay_and_duplicate_values() {
        let mut snap = OrderedSnapshot::<i64>::default();
        for c in 0..100i64 {
            snap.insert(Operator::Ge, c, PredicateId(c as u32));
        }
        snap.flush();
        // Fresh inserts stay in the delta overlay (below rebuild threshold).
        snap.insert(Operator::Gt, 17, PredicateId(200));
        snap.insert(Operator::Lt, 18, PredicateId(201));
        assert_batched_matches_scalar(&snap, &[17, 17, 18, 18, 0, 99, 120]);
    }

    #[test]
    fn batched_empty_cases() {
        let snap = OrderedSnapshot::<i64>::default();
        assert_batched_matches_scalar(&snap, &[]);
        assert_batched_matches_scalar(&snap, &[3, -5]);
        let mut one = OrderedSnapshot::<i64>::default();
        one.insert(Operator::Lt, 5, PredicateId(0));
        one.flush();
        assert_batched_matches_scalar(&one, &[4, 5, 6, i64::MIN, i64::MAX]);
    }

    #[test]
    fn threshold_is_floored_and_capped() {
        assert_eq!(rebuild_threshold(0), 32);
        assert_eq!(rebuild_threshold(80), 42);
        assert_eq!(rebuild_threshold(1 << 20), 1024);
    }
}
