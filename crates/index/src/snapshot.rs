//! Flat snapshot index for ordered predicates — the cache-conscious phase-1
//! fast path.
//!
//! The B+-tree interval index ([`crate::bptree`]) answers an event pair with
//! two leaf walks that chase pointers and test four `Option` slots per key.
//! This module flattens each attribute's ordered predicates into immutable
//! sorted arrays where the satisfied set for any event value is **one
//! contiguous run per direction**, so evaluation is a branchless binary
//! search plus a bulk bit-set:
//!
//! ```text
//!              upper direction (<, ≤)            lower direction (≥, >)
//!   keys: [(c0,r) (c1,r) (c2,r) (c3,r) …]   [(c0,r) (c1,r) (c2,r) …]
//!   ids:  [ p17    p4     p9     p23   …]   [ p3     p11    p6    …]
//!                  ▲______________________          ▲________
//!                  satisfied = suffix run           satisfied = prefix run
//! ```
//!
//! *Run space*: positions in the sorted array. The parallel `ids` vector is
//! the remap table from run space back to real [`PredicateId`]s; a run
//! `[lo, hi)` is resolved with `ids[lo..hi]`, which feeds
//! [`PredicateBitVec::set_from_slice`] and `Vec::extend_from_slice` directly.
//!
//! Within one direction the two operators are merged by a tie-break rank so
//! a single search serves both: for the upper direction `<` sorts before `≤`
//! at equal constants (rank 0 vs 1), and the satisfied set is exactly the
//! suffix starting at `partition_point(key < (x, 1))`; symmetrically the
//! lower direction (`≥` rank 0, `>` rank 1) is the prefix ending there.
//!
//! **Mutations** do not rewrite the snapshot. Inserts go to a small sorted
//! delta overlay (searched the same way at eval time); removals of
//! snapshot-resident predicates record a *tombstone position*, and the run is
//! emitted as segments around tombstones. Once an attribute's pending
//! mutation count exceeds [`rebuild_threshold`], the snapshot and delta are
//! merge-rebuilt in one O(n) pass — so steady-state matching never touches
//! the B+-tree, and churn costs amortized O(1) per mutation.

use crate::bitvec::PredicateBitVec;
use crate::registry::PredicateId;
use pubsub_types::Operator;

/// Pending mutations (delta inserts + tombstones) an attribute's direction
/// may accumulate before its snapshot is merge-rebuilt.
///
/// Proportional to the snapshot so rebuilds amortize to O(1) per mutation,
/// floored so tiny attributes don't rebuild on every insert, and capped so
/// the sorted-insert memmove and the eval-time overlay stay cache-resident.
pub fn rebuild_threshold(snapshot_len: usize) -> usize {
    (32 + snapshot_len / 8).min(1024)
}

/// One direction of one attribute: sorted `(constant, rank)` breakpoints, the
/// run-space → predicate-id remap table, tombstones, and the delta overlay.
#[derive(Debug, Default, Clone)]
struct DirectionIndex<K> {
    /// Sorted breakpoints; position in this vector is the run space.
    keys: Vec<(K, u8)>,
    /// Remap table, parallel to `keys`.
    ids: Vec<PredicateId>,
    /// Sorted positions in `keys` whose predicate was released since the
    /// last rebuild.
    tombs: Vec<u32>,
    /// Sorted overlay of breakpoints inserted since the last rebuild.
    delta_keys: Vec<(K, u8)>,
    /// Remap table of the overlay, parallel to `delta_keys`.
    delta_ids: Vec<PredicateId>,
}

impl<K: Ord + Copy> DirectionIndex<K> {
    fn pending(&self) -> usize {
        self.tombs.len() + self.delta_keys.len()
    }

    fn live_len(&self) -> usize {
        self.keys.len() - self.tombs.len() + self.delta_keys.len()
    }

    /// Registers a predicate. If the same breakpoint was tombstoned since the
    /// last rebuild, the snapshot slot is revived in place (the remap entry
    /// is rewritten — the released id may have been recycled elsewhere);
    /// otherwise the breakpoint joins the sorted delta overlay.
    fn insert(&mut self, key: (K, u8), id: PredicateId) {
        if let Ok(p) = self.keys.binary_search(&key) {
            let t = self
                .tombs
                .binary_search(&(p as u32))
                .expect("re-inserted breakpoint must be tombstoned (interning dedups live ones)");
            self.tombs.remove(t);
            self.ids[p] = id;
            return;
        }
        let at = self
            .delta_keys
            .binary_search(&key)
            .expect_err("breakpoint already present in delta overlay");
        self.delta_keys.insert(at, key);
        self.delta_ids.insert(at, id);
    }

    /// Unregisters a predicate: dropped from the delta if it never made it
    /// into a snapshot, tombstoned otherwise.
    fn remove(&mut self, key: (K, u8)) {
        if let Ok(d) = self.delta_keys.binary_search(&key) {
            self.delta_keys.remove(d);
            self.delta_ids.remove(d);
            return;
        }
        let p = self
            .keys
            .binary_search(&key)
            .expect("removed breakpoint must exist") as u32;
        let t = self
            .tombs
            .binary_search(&p)
            .expect_err("breakpoint already tombstoned");
        self.tombs.insert(t, p);
    }

    /// Merges snapshot-minus-tombstones with the delta overlay into a fresh
    /// snapshot. O(keys + delta), no tree involved.
    fn rebuild(&mut self) {
        let mut keys = Vec::with_capacity(self.live_len());
        let mut ids = Vec::with_capacity(self.live_len());
        let mut t = 0usize;
        let mut d = 0usize;
        for (p, (&k, &id)) in self.keys.iter().zip(&self.ids).enumerate() {
            if t < self.tombs.len() && self.tombs[t] as usize == p {
                t += 1;
                continue;
            }
            while d < self.delta_keys.len() && self.delta_keys[d] < k {
                keys.push(self.delta_keys[d]);
                ids.push(self.delta_ids[d]);
                d += 1;
            }
            keys.push(k);
            ids.push(id);
        }
        keys.extend_from_slice(&self.delta_keys[d..]);
        ids.extend_from_slice(&self.delta_ids[d..]);
        self.keys = keys;
        self.ids = ids;
        self.tombs.clear();
        self.delta_keys.clear();
        self.delta_ids.clear();
    }

    /// Emits the run `[lo, hi)` of the snapshot remap table, split around
    /// tombstones, via the bulk bit-set path.
    fn emit_run(
        &self,
        lo: usize,
        hi: usize,
        bits: &mut PredicateBitVec,
        satisfied: &mut Vec<PredicateId>,
    ) {
        if lo >= hi {
            return;
        }
        let mut a = lo;
        let first = self.tombs.partition_point(|&p| (p as usize) < lo);
        for &p in &self.tombs[first..] {
            let p = p as usize;
            if p >= hi {
                break;
            }
            if p > a {
                bits.set_from_slice(&self.ids[a..p]);
                satisfied.extend_from_slice(&self.ids[a..p]);
            }
            a = p + 1;
        }
        if a < hi {
            bits.set_from_slice(&self.ids[a..hi]);
            satisfied.extend_from_slice(&self.ids[a..hi]);
        }
    }

    /// Evaluates an event value: one branchless binary search per array, then
    /// bulk-emits the satisfied run (`suffix` picks the direction's shape).
    fn eval(
        &self,
        x: K,
        suffix: bool,
        bits: &mut PredicateBitVec,
        satisfied: &mut Vec<PredicateId>,
    ) {
        let probe = (x, 1u8);
        if !self.keys.is_empty() {
            let b = self.keys.partition_point(|k| *k < probe);
            if suffix {
                self.emit_run(b, self.keys.len(), bits, satisfied);
            } else {
                self.emit_run(0, b, bits, satisfied);
            }
        }
        if !self.delta_keys.is_empty() {
            let b = self.delta_keys.partition_point(|k| *k < probe);
            let (lo, hi) = if suffix {
                (b, self.delta_keys.len())
            } else {
                (0, b)
            };
            if lo < hi {
                bits.set_from_slice(&self.delta_ids[lo..hi]);
                satisfied.extend_from_slice(&self.delta_ids[lo..hi]);
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<(K, u8)>()
            + self.delta_keys.capacity() * std::mem::size_of::<(K, u8)>()
            + (self.ids.capacity() + self.delta_ids.capacity() + self.tombs.capacity()) * 4
    }
}

/// The snapshot evaluator for the ordered predicates of one attribute and one
/// key kind (integers or interned-string symbols).
#[derive(Debug, Default, Clone)]
pub(crate) struct OrderedSnapshot<K> {
    /// `<` (rank 0) and `≤` (rank 1): satisfied ids are a suffix run.
    upper: DirectionIndex<K>,
    /// `≥` (rank 0) and `>` (rank 1): satisfied ids are a prefix run.
    lower: DirectionIndex<K>,
    /// Generation counter: number of merge-rebuilds performed.
    rebuilds: u64,
}

/// `(direction is upper, tie-break rank)` for an ordered operator.
fn direction_rank(op: Operator) -> (bool, u8) {
    match op {
        Operator::Lt => (true, 0),
        Operator::Le => (true, 1),
        Operator::Ge => (false, 0),
        Operator::Gt => (false, 1),
        _ => unreachable!("snapshot stores only ordered operators"),
    }
}

impl<K: Ord + Copy> OrderedSnapshot<K> {
    /// Registers an ordered predicate; rebuilds the affected direction if its
    /// pending-mutation budget is exhausted.
    pub(crate) fn insert(&mut self, op: Operator, key: K, id: PredicateId) {
        let (upper, rank) = direction_rank(op);
        let dir = if upper {
            &mut self.upper
        } else {
            &mut self.lower
        };
        dir.insert((key, rank), id);
        if dir.pending() > rebuild_threshold(dir.keys.len()) {
            dir.rebuild();
            self.rebuilds += 1;
        }
    }

    /// Unregisters an ordered predicate; same rebuild policy as insert.
    pub(crate) fn remove(&mut self, op: Operator, key: K) {
        let (upper, rank) = direction_rank(op);
        let dir = if upper {
            &mut self.upper
        } else {
            &mut self.lower
        };
        dir.remove((key, rank));
        if dir.pending() > rebuild_threshold(dir.keys.len()) {
            dir.rebuild();
            self.rebuilds += 1;
        }
    }

    /// Sets the bit and appends the id of every ordered predicate satisfied
    /// by event value `x`: two binary searches, two bulk runs.
    #[inline]
    pub(crate) fn eval_into(
        &self,
        x: K,
        bits: &mut PredicateBitVec,
        satisfied: &mut Vec<PredicateId>,
    ) {
        self.upper.eval(x, true, bits, satisfied);
        self.lower.eval(x, false, bits, satisfied);
    }

    /// Merges any pending delta/tombstones into the snapshots now (e.g.
    /// after a bulk load, so the first events already run tombstone-free).
    pub(crate) fn flush(&mut self) {
        for dir in [&mut self.upper, &mut self.lower] {
            if dir.pending() > 0 {
                dir.rebuild();
                self.rebuilds += 1;
            }
        }
    }

    /// Number of merge-rebuilds performed so far (diagnostics and tests).
    pub(crate) fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Heap bytes held by the snapshot arrays and overlays.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.upper.heap_bytes() + self.lower.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_ids(snap: &OrderedSnapshot<i64>, x: i64) -> Vec<u32> {
        let mut bits = PredicateBitVec::with_capacity(4096);
        let mut sat = Vec::new();
        snap.eval_into(x, &mut bits, &mut sat);
        let mut raw: Vec<u32> = sat.iter().map(|id| id.0).collect();
        // Every emitted id must also have its bit set.
        for id in &sat {
            assert!(bits.get(id.0));
        }
        raw.sort_unstable();
        raw
    }

    /// Brute-force oracle over `(op, constant, id)` triples.
    fn oracle(preds: &[(Operator, i64, u32)], x: i64) -> Vec<u32> {
        let mut out: Vec<u32> = preds
            .iter()
            .filter(|&&(op, c, _)| match op {
                Operator::Lt => x < c,
                Operator::Le => x <= c,
                Operator::Ge => x >= c,
                Operator::Gt => x > c,
                _ => unreachable!(),
            })
            .map(|&(_, _, id)| id)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn all_operators_all_boundaries() {
        let mut snap = OrderedSnapshot::<i64>::default();
        let mut preds = Vec::new();
        let mut next = 0u32;
        for op in [Operator::Lt, Operator::Le, Operator::Ge, Operator::Gt] {
            for c in [10i64, 20, 30] {
                snap.insert(op, c, PredicateId(next));
                preds.push((op, c, next));
                next += 1;
            }
        }
        for x in [-5i64, 9, 10, 11, 20, 25, 30, 31, 100] {
            assert_eq!(eval_ids(&snap, x), oracle(&preds, x), "x = {x}");
        }
    }

    #[test]
    fn removal_tombstones_split_the_run() {
        let mut snap = OrderedSnapshot::<i64>::default();
        for c in 0..10i64 {
            snap.insert(Operator::Le, c, PredicateId(c as u32));
        }
        // Force everything into the snapshot arrays, then tombstone from the
        // middle of the run.
        snap.flush();
        snap.remove(Operator::Le, 4);
        snap.remove(Operator::Le, 7);
        let got = eval_ids(&snap, 2);
        assert_eq!(got, vec![2, 3, 5, 6, 8, 9], "x ≤ c run minus tombstones");
    }

    #[test]
    fn reinsert_after_tombstone_revives_slot_with_new_id() {
        let mut snap = OrderedSnapshot::<i64>::default();
        snap.insert(Operator::Ge, 5, PredicateId(0));
        snap.flush();
        snap.remove(Operator::Ge, 5);
        assert!(eval_ids(&snap, 9).is_empty());
        // Same breakpoint returns under a recycled (different) id.
        snap.insert(Operator::Ge, 5, PredicateId(42));
        assert_eq!(eval_ids(&snap, 9), vec![42]);
        assert!(eval_ids(&snap, 4).is_empty());
    }

    #[test]
    fn delta_overlay_and_snapshot_merge_agree_with_oracle() {
        let mut snap = OrderedSnapshot::<i64>::default();
        let mut preds = Vec::new();
        // Interleave inserts and removes way past the rebuild threshold so
        // the test exercises delta-resident, tombstoned, and merged states.
        let mut next = 0u32;
        for round in 0..3 {
            for i in 0..100i64 {
                let op = [Operator::Lt, Operator::Le, Operator::Ge, Operator::Gt]
                    [(i as usize + round) % 4];
                let c = (i * 7 + round as i64 * 13) % 200;
                if preds.iter().any(|&(o, k, _)| (o, k) == (op, c)) {
                    continue;
                }
                snap.insert(op, c, PredicateId(next));
                preds.push((op, c, next));
                next += 1;
            }
            // Remove every third registered predicate.
            let victims: Vec<(Operator, i64, u32)> = preds.iter().copied().step_by(3).collect();
            for (op, c, _) in &victims {
                snap.remove(*op, *c);
            }
            preds.retain(|p| !victims.contains(p));
            for x in [-1i64, 0, 50, 99, 137, 200] {
                assert_eq!(eval_ids(&snap, x), oracle(&preds, x), "round {round} x {x}");
            }
        }
        assert!(snap.rebuilds() > 0, "churn volume must trigger rebuilds");
    }

    #[test]
    fn flush_merges_pending_state() {
        let mut snap = OrderedSnapshot::<i64>::default();
        for c in 0..20i64 {
            snap.insert(Operator::Lt, c, PredicateId(c as u32));
        }
        snap.remove(Operator::Lt, 3);
        let before = eval_ids(&snap, -1);
        let gens = snap.rebuilds();
        snap.flush();
        assert!(snap.rebuilds() > gens);
        assert_eq!(eval_ids(&snap, -1), before, "flush must not change results");
        snap.flush();
        assert_eq!(snap.rebuilds(), gens + 1, "idle flush is a no-op");
    }

    #[test]
    fn threshold_is_floored_and_capped() {
        assert_eq!(rebuild_threshold(0), 32);
        assert_eq!(rebuild_threshold(80), 42);
        assert_eq!(rebuild_threshold(1 << 20), 1024);
    }
}
