//! Word-parallel search kernels for the snapshot evaluator.
//!
//! The snapshot index stores each direction's breakpoints twice: as the
//! `(constant, rank)` tuples the mutation path binary-searches, and as a
//! parallel array of order-preserving `u64` encodings ([`SnapKey::encode`])
//! that these kernels consume. [`lower_bound_u64`] answers "first position
//! whose encoded key is ≥ target" — the batched evaluator turns every
//! per-direction `partition_point` into one of these over a galloped window.
//!
//! Three implementations share one contract and are proptest-checked against
//! each other (`crates/index/tests/proptests.rs`):
//!
//! * [`lower_bound_scalar`] — `slice::partition_point`, the reference.
//! * [`lower_bound_portable`] — branchless halving to a small window, then a
//!   counting scan over `u64` lanes that the compiler auto-vectorizes.
//!   Always compiled; the default dispatch target.
//! * SSE2/AVX2 (`--features simd`, x86-64 only) — explicit `std::arch`
//!   compare-and-popcount tails. The CPU level is probed once per process
//!   with `is_x86_feature_detected!` and cached in an atomic; SSE2 is part
//!   of the x86-64 baseline, AVX2 is taken when present. On other
//!   architectures the `simd` feature compiles but falls back to the
//!   portable kernel.

/// Order-preserving `u64` encoding for snapshot key types.
///
/// The contract is `a < b ⟺ a.encode() < b.encode()` under *unsigned* `u64`
/// order, so one unsigned kernel serves every key kind.
pub trait SnapKey: Ord + Copy + std::fmt::Debug {
    /// Encodes the key into the unsigned comparison domain.
    fn encode(self) -> u64;
}

impl SnapKey for i64 {
    /// Sign-bias flip: maps `i64::MIN..=i64::MAX` onto `0..=u64::MAX`
    /// monotonically.
    #[inline]
    fn encode(self) -> u64 {
        (self as u64) ^ (1 << 63)
    }
}

impl SnapKey for u32 {
    /// Interned-symbol ids are already unsigned; widen.
    #[inline]
    fn encode(self) -> u64 {
        self as u64
    }
}

/// First index `i` in sorted `a` with `a[i] >= target` — the reference
/// implementation the vector kernels are checked against.
#[inline]
pub fn lower_bound_scalar(a: &[u64], target: u64) -> usize {
    a.partition_point(|&x| x < target)
}

/// First index `i` in sorted `a` with `a[i] >= target`, via the fastest
/// kernel available: the explicit SIMD paths when the `simd` feature is
/// enabled and the CPU supports them, the portable branchless kernel
/// otherwise.
#[inline]
pub fn lower_bound_u64(a: &[u64], target: u64) -> usize {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if x86::avx2_available() {
            // SAFETY: AVX2 presence verified at runtime (cached probe).
            return unsafe { x86::lower_bound_avx2(a, target) };
        }
        // SAFETY: SSE2 is part of the x86-64 baseline.
        return unsafe { x86::lower_bound_sse2(a, target) };
    }
    #[allow(unreachable_code)]
    lower_bound_portable(a, target)
}

/// Portable kernel: branchless binary halving down to a window of at most
/// eight elements, then a counting scan (`x < target` summed as 0/1 lanes)
/// that LLVM auto-vectorizes. Equivalent to [`lower_bound_scalar`] on every
/// sorted input.
pub fn lower_bound_portable(a: &[u64], target: u64) -> usize {
    let mut base = 0usize;
    let mut len = a.len();
    while len > 8 {
        let half = len / 2;
        // Branchless: advance `base` only when the pivot sorts below target.
        base += usize::from(a[base + half - 1] < target) * half;
        len -= half;
    }
    // The window is sorted, so the count of elements below target *is* the
    // offset of the partition point within it.
    let mut cnt = 0usize;
    for &x in &a[base..base + len] {
        cnt += usize::from(x < target);
    }
    base + cnt
}

/// SSE2 kernel behind a safe wrapper (SSE2 is the x86-64 baseline); only
/// compiled with `--features simd`. Exposed so the differential proptest can
/// pin it against the scalar path even on AVX2 machines where dispatch would
/// skip it.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub fn lower_bound_sse2(a: &[u64], target: u64) -> usize {
    // SAFETY: SSE2 is part of the x86-64 baseline.
    unsafe { x86::lower_bound_sse2(a, target) }
}

/// AVX2 kernel behind the runtime probe; `None` when the CPU lacks AVX2.
/// Only compiled with `--features simd`.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub fn lower_bound_avx2(a: &[u64], target: u64) -> Option<usize> {
    if x86::avx2_available() {
        // SAFETY: AVX2 presence verified at runtime.
        Some(unsafe { x86::lower_bound_avx2(a, target) })
    } else {
        None
    }
}

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod x86 {
    use std::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Cached CPU level: 0 = not probed yet, 1 = SSE2 only, 2 = AVX2.
    static LEVEL: AtomicU8 = AtomicU8::new(0);

    #[inline]
    pub(super) fn avx2_available() -> bool {
        match LEVEL.load(Ordering::Relaxed) {
            0 => {
                let level = if is_x86_feature_detected!("avx2") {
                    2
                } else {
                    1
                };
                LEVEL.store(level, Ordering::Relaxed);
                level == 2
            }
            l => l == 2,
        }
    }

    /// Signed 64-bit `a > b` per lane, synthesized from SSE2 32-bit ops
    /// (SSE2 has no `cmpgt_epi64`). Lanes with equal high dwords take the
    /// sign of the 64-bit difference `b - a` (no overflow: the difference
    /// fits in 33 bits when the highs are equal); unequal high dwords take
    /// the 32-bit signed compare of the highs. Only bit 63 of each lane is
    /// meaningful — the caller consumes the result through
    /// `_mm_movemask_pd`, which reads exactly that bit.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn cmpgt_epi64(a: __m128i, b: __m128i) -> __m128i {
        let eq_hi = _mm_cmpeq_epi32(a, b);
        let diff = _mm_sub_epi64(b, a);
        let gt32 = _mm_cmpgt_epi32(a, b);
        _mm_or_si128(_mm_and_si128(eq_hi, diff), gt32)
    }

    /// SSE2 lower bound: branchless halving to ≤ 8 elements, then a
    /// two-lane compare/popcount tail. Encoded keys are unsigned-ordered;
    /// lanes are re-biased into the signed domain (`XOR 1 << 63`) for the
    /// signed compare.
    ///
    /// # Safety
    /// Requires SSE2 (always present on x86-64).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn lower_bound_sse2(a: &[u64], target: u64) -> usize {
        let mut base = 0usize;
        let mut len = a.len();
        while len > 8 {
            let half = len / 2;
            base += usize::from(*a.get_unchecked(base + half - 1) < target) * half;
            len -= half;
        }
        let bias = _mm_set1_epi64x(i64::MIN);
        let t = _mm_xor_si128(_mm_set1_epi64x(target as i64), bias);
        let end = base + len;
        let mut cnt = 0usize;
        let mut i = base;
        while i + 2 <= end {
            let v = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let lt = cmpgt_epi64(t, _mm_xor_si128(v, bias));
            cnt += (_mm_movemask_pd(_mm_castsi128_pd(lt)) as u32).count_ones() as usize;
            i += 2;
        }
        while i < end {
            cnt += usize::from(*a.get_unchecked(i) < target);
            i += 1;
        }
        base + cnt
    }

    /// AVX2 lower bound: branchless halving to ≤ 16 elements, then a
    /// four-lane `_mm256_cmpgt_epi64` compare/popcount tail, with the same
    /// sign-bias trick as the SSE2 kernel.
    ///
    /// # Safety
    /// Requires AVX2 (callers must probe first).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lower_bound_avx2(a: &[u64], target: u64) -> usize {
        let mut base = 0usize;
        let mut len = a.len();
        while len > 16 {
            let half = len / 2;
            base += usize::from(*a.get_unchecked(base + half - 1) < target) * half;
            len -= half;
        }
        let bias = _mm256_set1_epi64x(i64::MIN);
        let t = _mm256_xor_si256(_mm256_set1_epi64x(target as i64), bias);
        let end = base + len;
        let mut cnt = 0usize;
        let mut i = base;
        while i + 4 <= end {
            let v = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let lt = _mm256_cmpgt_epi64(t, _mm256_xor_si256(v, bias));
            cnt += (_mm256_movemask_pd(_mm256_castsi256_pd(lt)) as u32).count_ones() as usize;
            i += 4;
        }
        while i < end {
            cnt += usize::from(*a.get_unchecked(i) < target);
            i += 1;
        }
        base + cnt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all(a: &[u64], target: u64) {
        let want = lower_bound_scalar(a, target);
        assert_eq!(
            lower_bound_portable(a, target),
            want,
            "portable {a:?} {target}"
        );
        assert_eq!(lower_bound_u64(a, target), want, "dispatch {a:?} {target}");
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        {
            assert_eq!(lower_bound_sse2(a, target), want, "sse2 {a:?} {target}");
            if let Some(got) = lower_bound_avx2(a, target) {
                assert_eq!(got, want, "avx2 {a:?} {target}");
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        check_all(&[], 0);
        check_all(&[], u64::MAX);
        check_all(&[7], 6);
        check_all(&[7], 7);
        check_all(&[7], 8);
    }

    #[test]
    fn duplicates_land_on_first() {
        let a = [1u64, 3, 3, 3, 9, 9, 12];
        for t in 0..14 {
            check_all(&a, t);
        }
        assert_eq!(lower_bound_u64(&a, 3), 1);
        assert_eq!(lower_bound_u64(&a, 9), 4);
    }

    #[test]
    fn sign_bias_boundaries() {
        // Values straddling the i64 sign flip and the u64 extremes — the
        // lanes where a biased compare goes wrong first.
        let a = [
            0u64,
            1,
            (1 << 63) - 1,
            1 << 63,
            (1 << 63) + 1,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &t in &a {
            check_all(&a, t);
            check_all(&a, t.wrapping_add(1));
            check_all(&a, t.wrapping_sub(1));
        }
    }

    #[test]
    fn all_window_sizes() {
        // Cover every tail-window length both kernels can see (0..=40),
        // probing every boundary and both gaps around it.
        for n in 0..40u64 {
            let a: Vec<u64> = (0..n).map(|i| i * 3 + 1).collect();
            for t in 0..(n * 3 + 3) {
                check_all(&a, t);
            }
        }
    }

    #[test]
    fn i64_encoding_is_monotone() {
        let xs = [i64::MIN, -2, -1, 0, 1, 2, i64::MAX];
        for w in xs.windows(2) {
            assert!(w[0].encode() < w[1].encode(), "{} vs {}", w[0], w[1]);
        }
        assert_eq!(0u32.encode(), 0);
        assert!(3u32.encode() < 4u32.encode());
    }
}
