//! The predicate bit vector.
//!
//! Each distinct predicate in the system owns one entry; the predicate phase
//! sets the entry to 1 when the incoming event satisfies the predicate, and
//! the subscription phase reads entries through the cluster predicate arrays
//! (paper §2.2, Figure 1).
//!
//! The paper zeroes the whole vector per event (`B = 0`). We keep a list of
//! the words actually touched so the reset costs O(bits set) instead of
//! O(total predicates) — with millions of subscriptions but a few thousand
//! distinct predicates either would be fine, but per-event work is the thing
//! this entire paper is about shaving.

/// A bit vector indexed by predicate id with O(touched) clearing.
#[derive(Debug, Default)]
pub struct PredicateBitVec {
    words: Vec<u64>,
    touched: Vec<u32>,
}

impl PredicateBitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a bit vector with room for `bits` predicates.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
            touched: Vec::new(),
        }
    }

    /// Grows the vector so it can hold `bits` entries.
    pub fn ensure_capacity(&mut self, bits: usize) {
        let words = bits.div_ceil(64);
        if words > self.words.len() {
            self.words.resize(words, 0);
        }
    }

    /// Number of addressable bits.
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Sets bit `i` (marks predicate `i` satisfied).
    ///
    /// # Panics
    /// Panics if `i` is beyond capacity; callers grow the vector when
    /// interning predicates, never on the matching path.
    #[inline]
    pub fn set(&mut self, i: u32) {
        let w = (i / 64) as usize;
        let bit = 1u64 << (i % 64);
        if self.words[w] == 0 {
            self.touched.push(w as u32);
        }
        self.words[w] |= bit;
    }

    /// Sets the bit of every id in `ids` — the bulk path of the snapshot
    /// evaluator, which hands over whole remap-table runs at once.
    ///
    /// Bits are accumulated into a word-sized mask and flushed once per word
    /// change, so a run of ids landing in the same word costs one memory
    /// write instead of one per id. Ids may arrive in any order and may
    /// repeat words already touched by [`PredicateBitVec::set`]; the touched
    /// list never gets duplicates (a word is recorded only on its 0 → non-0
    /// transition), so [`PredicateBitVec::clear`] still resets everything.
    ///
    /// # Panics
    /// Panics if any id is beyond capacity, like [`PredicateBitVec::set`].
    pub fn set_from_slice(&mut self, ids: &[crate::registry::PredicateId]) {
        let mut cur_w = usize::MAX;
        let mut cur_mask = 0u64;
        for &id in ids {
            let w = (id.0 / 64) as usize;
            if w != cur_w {
                if cur_mask != 0 {
                    self.or_word(cur_w, cur_mask);
                }
                cur_w = w;
                cur_mask = 0;
            }
            cur_mask |= 1u64 << (id.0 % 64);
        }
        if cur_mask != 0 {
            self.or_word(cur_w, cur_mask);
        }
    }

    /// Sets every bit in `[lo, hi)` word-parallel: full interior words are
    /// OR-ed with `!0`, the partial edge words with range masks — no
    /// per-bit loop or branch.
    ///
    /// # Panics
    /// Panics if `hi` exceeds capacity, like [`PredicateBitVec::set`].
    pub fn set_from_range(&mut self, lo: u32, hi: u32) {
        if lo >= hi {
            return;
        }
        let (wl, wh) = ((lo / 64) as usize, ((hi - 1) / 64) as usize);
        let head = !0u64 << (lo % 64);
        let tail = !0u64 >> (63 - ((hi - 1) % 64));
        if wl == wh {
            self.or_word(wl, head & tail);
            return;
        }
        self.or_word(wl, head);
        for w in wl + 1..wh {
            self.or_word(w, !0);
        }
        self.or_word(wh, tail);
    }

    /// ORs precomputed `(word index, mask)` pairs — the snapshot index's
    /// block-mask path: one memory OR per touched word no matter how many
    /// bits the word carries. Zero masks are skipped (tombstone patches can
    /// empty an entry) so the touched list records only real transitions.
    ///
    /// # Panics
    /// Panics if a word index is beyond capacity.
    pub fn or_masks(&mut self, entries: &[(u32, u64)]) {
        for &(w, mask) in entries {
            if mask != 0 {
                self.or_word(w as usize, mask);
            }
        }
    }

    /// ORs `mask` into word `w`, maintaining the touched list.
    #[inline]
    fn or_word(&mut self, w: usize, mask: u64) {
        if self.words[w] == 0 {
            self.touched.push(w as u32);
        }
        self.words[w] |= mask;
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        let w = (i / 64) as usize;
        (self.words[w] >> (i % 64)) & 1 != 0
    }

    /// Clears every set bit, in time proportional to the number of touched
    /// words.
    #[inline]
    pub fn clear(&mut self) {
        for &w in &self.touched {
            self.words[w as usize] = 0;
        }
        self.touched.clear();
    }

    /// Number of set bits (diagnostics only — walks the touched words).
    pub fn count_ones(&self) -> usize {
        self.touched
            .iter()
            .map(|&w| self.words[w as usize].count_ones() as usize)
            .sum()
    }

    /// Heap bytes used, for the memory experiments (Fig 3c).
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8 + self.touched.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut b = PredicateBitVec::with_capacity(200);
        assert!(!b.get(3));
        b.set(3);
        b.set(64);
        b.set(199);
        assert!(b.get(3));
        assert!(b.get(64));
        assert!(b.get(199));
        assert!(!b.get(4));
        assert_eq!(b.count_ones(), 3);
        b.clear();
        assert!(!b.get(3));
        assert!(!b.get(64));
        assert!(!b.get(199));
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn touched_list_has_no_duplicates_for_same_word() {
        let mut b = PredicateBitVec::with_capacity(128);
        b.set(0);
        b.set(1);
        b.set(63); // same word
        b.set(64); // new word
        assert_eq!(b.touched.len(), 2);
        b.clear();
        assert_eq!(b.touched.len(), 0);
    }

    #[test]
    fn ensure_capacity_grows_only() {
        let mut b = PredicateBitVec::new();
        b.ensure_capacity(10);
        assert!(b.capacity() >= 10);
        let cap = b.capacity();
        b.ensure_capacity(5);
        assert_eq!(b.capacity(), cap);
        b.ensure_capacity(1000);
        assert!(b.capacity() >= 1000);
    }

    fn ids(raw: &[u32]) -> Vec<crate::registry::PredicateId> {
        raw.iter()
            .map(|&i| crate::registry::PredicateId(i))
            .collect()
    }

    #[test]
    fn set_from_slice_sets_all_bits() {
        let mut b = PredicateBitVec::with_capacity(256);
        b.set_from_slice(&ids(&[0, 1, 63, 64, 200, 3]));
        for i in [0, 1, 3, 63, 64, 200] {
            assert!(b.get(i), "bit {i}");
        }
        assert!(!b.get(2));
        assert_eq!(b.count_ones(), 6);
    }

    #[test]
    fn set_from_slice_empty_is_noop() {
        let mut b = PredicateBitVec::with_capacity(64);
        b.set_from_slice(&[]);
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.touched.len(), 0);
    }

    #[test]
    fn set_from_slice_batches_words_without_touched_duplicates() {
        let mut b = PredicateBitVec::with_capacity(192);
        // 0..64 share a word; 64 and 65 share the next; then back to word 0
        // (ids are remap-table order, not sorted by id).
        b.set_from_slice(&ids(&[5, 6, 7, 64, 65, 9]));
        assert_eq!(b.touched.len(), 2, "each word recorded once");
        assert_eq!(b.count_ones(), 6);
    }

    #[test]
    fn set_from_slice_interacts_with_set_and_clear() {
        // The touched-word reset interaction: a word first touched by `set`
        // then extended by `set_from_slice` (and vice versa) must be recorded
        // exactly once and fully reset by `clear`.
        let mut b = PredicateBitVec::with_capacity(128);
        b.set(3);
        b.set_from_slice(&ids(&[4, 5, 70]));
        b.set(71);
        assert_eq!(b.touched.len(), 2);
        assert_eq!(b.count_ones(), 5);
        b.clear();
        for i in [3, 4, 5, 70, 71] {
            assert!(!b.get(i), "bit {i} must be reset");
        }
        assert_eq!(b.count_ones(), 0);
        // Reusable after the reset.
        b.set_from_slice(&ids(&[3]));
        assert!(b.get(3));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn count_ones_counts_across_bulk_and_single_sets() {
        let mut b = PredicateBitVec::with_capacity(256);
        b.set_from_slice(&ids(&[0, 1, 2]));
        b.set(2); // duplicate set must not double-count
        b.set(130);
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn set_from_range_matches_per_bit_sets() {
        for (lo, hi) in [
            (0u32, 0u32),
            (5, 5),
            (0, 1),
            (0, 64),
            (3, 61),
            (3, 64),
            (60, 70),
            (0, 200),
            (63, 65),
            (64, 128),
            (130, 131),
        ] {
            let mut bulk = PredicateBitVec::with_capacity(256);
            let mut single = PredicateBitVec::with_capacity(256);
            bulk.set_from_range(lo, hi);
            for i in lo..hi {
                single.set(i);
            }
            for i in 0..256 {
                assert_eq!(bulk.get(i), single.get(i), "bit {i} of [{lo}, {hi})");
            }
            assert_eq!(bulk.count_ones(), (hi - lo) as usize);
            bulk.clear();
            assert_eq!(bulk.count_ones(), 0, "clear resets range [{lo}, {hi})");
        }
    }

    #[test]
    fn or_masks_sets_words_and_skips_zero_masks() {
        let mut b = PredicateBitVec::with_capacity(256);
        b.or_masks(&[(0, 0b101), (2, 0), (3, 1 << 63), (0, 0b010)]);
        for i in [0, 1, 2, 192 + 63] {
            assert!(b.get(i), "bit {i}");
        }
        assert_eq!(b.count_ones(), 4);
        assert_eq!(b.touched.len(), 2, "zero mask must not touch its word");
        b.clear();
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn clear_then_reuse() {
        let mut b = PredicateBitVec::with_capacity(64);
        for round in 0..3 {
            b.set(round);
            assert!(b.get(round));
            b.clear();
            for i in 0..64 {
                assert!(!b.get(i), "round {round} bit {i}");
            }
        }
    }
}
