//! Predicate interning and the phase-1 evaluator.
//!
//! Every distinct `(attribute, operator, value)` predicate in the system is
//! interned to a dense [`PredicateId`] with a reference count (one per
//! subscription using it; "indexes are updated only if s contains a new
//! predicate that is not already in the system", paper §2.3 footnote).
//!
//! Per attribute, the registry maintains:
//!
//! * a **hash index** for `=` predicates (one lookup per event pair),
//! * a **B+-tree interval index** for `<, ≤, ≥, >` predicates (two range
//!   scans per event pair: one ascending for `<`/`≤`, one descending for
//!   `>`/`≥`),
//! * a **list index** for `≠` predicates (scan-all-but-equal).
//!
//! [`PredicateIndex::eval_into`] runs the predicate phase of the matching
//! algorithm (paper Figure 2, step 1): it sets the bit of every satisfied
//! predicate and appends the satisfied ids to a caller-provided buffer.

use crate::bitvec::PredicateBitVec;
use crate::bptree::BPlusTree;
use crate::snapshot::OrderedSnapshot;
use pubsub_types::metrics::Counter;
use pubsub_types::{AttrId, Event, FxHashMap, Operator, Predicate, Value};
use std::ops::Bound;

/// Phase-1 evaluations answered by the flat snapshot path.
static SNAPSHOT_EVALS: Counter = Counter::new("index.phase1.snapshot_evals");
/// Phase-1 evaluations answered by the B+-tree reference path.
static BTREE_EVALS: Counter = Counter::new("index.phase1.btree_evals");
/// Predicate bits set by phase 1 (satisfied predicates, both paths).
static BITS_SET: Counter = Counter::new("index.phase1.bits_set");
/// Snapshot merge-rebuilds forced via `rebuild_snapshots`.
static SNAPSHOT_FLUSHES: Counter = Counter::new("index.snapshot.flushes");
/// Predicates interned (new id minted or refcount bumped).
static PREDS_INTERNED: Counter = Counter::new("index.predicates.interned");
/// Predicates fully released (refcount hit zero).
static PREDS_RELEASED: Counter = Counter::new("index.predicates.released");

/// Dense id of an interned predicate; indexes the predicate bit vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredicateId(pub u32);

impl PredicateId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-`(key, ordered-op)` slots stored in the interval index.
///
/// Because predicates are interned, at most one predicate exists per
/// `(attribute, operator, constant)`, so each slot is an `Option`.
#[derive(Debug, Default, Clone, Copy)]
struct OpSlots {
    lt: Option<PredicateId>,
    le: Option<PredicateId>,
    ge: Option<PredicateId>,
    gt: Option<PredicateId>,
}

impl OpSlots {
    fn slot_mut(&mut self, op: Operator) -> &mut Option<PredicateId> {
        match op {
            Operator::Lt => &mut self.lt,
            Operator::Le => &mut self.le,
            Operator::Ge => &mut self.ge,
            Operator::Gt => &mut self.gt,
            _ => unreachable!("OpSlots only stores ordered operators"),
        }
    }

    fn is_empty(&self) -> bool {
        self.lt.is_none() && self.le.is_none() && self.ge.is_none() && self.gt.is_none()
    }
}

/// `≠` predicates on one attribute: a vector for scanning plus a position map
/// for O(1) removal.
#[derive(Debug, Default)]
struct NeIndex {
    items: Vec<(Value, PredicateId)>,
    pos: FxHashMap<Value, usize>,
}

impl NeIndex {
    fn insert(&mut self, value: Value, id: PredicateId) {
        debug_assert!(!self.pos.contains_key(&value));
        self.pos.insert(value, self.items.len());
        self.items.push((value, id));
    }

    fn remove(&mut self, value: Value) {
        if let Some(idx) = self.pos.remove(&value) {
            self.items.swap_remove(idx);
            if idx < self.items.len() {
                self.pos.insert(self.items[idx].0, idx);
            }
        }
    }
}

/// All index structures for one attribute.
///
/// Ordered predicates are indexed twice: the B+-trees are the mutation-
/// friendly reference structure (and the baseline the benchmarks compare
/// against), while the [`OrderedSnapshot`]s are the flat evaluation fast
/// path that [`PredicateIndex::eval_into`] actually reads.
#[derive(Debug, Default)]
struct AttrIndex {
    eq: FxHashMap<Value, PredicateId>,
    ne: NeIndex,
    ordered_int: BPlusTree<i64, OpSlots>,
    ordered_str: BPlusTree<u32, OpSlots>,
    snap_int: OrderedSnapshot<i64>,
    snap_str: OrderedSnapshot<u32>,
    /// Live predicates on this attribute (any operator); 0 lets the
    /// evaluator skip the attribute before any hash probe.
    live: u32,
}

#[derive(Debug)]
struct Entry {
    pred: Predicate,
    refcount: u32,
    live: bool,
}

/// The predicate registry and phase-1 evaluator.
#[derive(Debug, Default)]
pub struct PredicateIndex {
    entries: Vec<Entry>,
    free: Vec<u32>,
    by_key: FxHashMap<Predicate, PredicateId>,
    attrs: Vec<AttrIndex>,
    live: usize,
}

impl PredicateIndex {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct live predicates (the bit-vector population).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no predicate is interned.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Capacity needed for a [`PredicateBitVec`] covering all ids.
    pub fn id_bound(&self) -> usize {
        self.entries.len()
    }

    /// The predicate for a live id.
    ///
    /// # Panics
    /// Panics if `id` is not live.
    pub fn predicate(&self, id: PredicateId) -> &Predicate {
        let e = &self.entries[id.index()];
        assert!(e.live, "predicate id {id:?} is not live");
        &e.pred
    }

    /// Number of subscriptions currently referencing `id`.
    pub fn refcount(&self, id: PredicateId) -> u32 {
        self.entries[id.index()].refcount
    }

    fn attr_index_mut(&mut self, attr: AttrId) -> &mut AttrIndex {
        let idx = attr.index();
        if self.attrs.len() <= idx {
            self.attrs.resize_with(idx + 1, AttrIndex::default);
        }
        &mut self.attrs[idx]
    }

    /// Interns `pred` (or bumps its refcount) and returns its id.
    pub fn intern(&mut self, pred: Predicate) -> PredicateId {
        PREDS_INTERNED.inc();
        if let Some(&id) = self.by_key.get(&pred) {
            self.entries[id.index()].refcount += 1;
            return id;
        }
        let id = if let Some(slot) = self.free.pop() {
            self.entries[slot as usize] = Entry {
                pred,
                refcount: 1,
                live: true,
            };
            PredicateId(slot)
        } else {
            let id = PredicateId(self.entries.len() as u32);
            self.entries.push(Entry {
                pred,
                refcount: 1,
                live: true,
            });
            id
        };
        self.by_key.insert(pred, id);
        self.live += 1;

        let ai = self.attr_index_mut(pred.attr);
        ai.live += 1;
        match pred.op {
            Operator::Eq => {
                ai.eq.insert(pred.value, id);
            }
            Operator::Ne => {
                ai.ne.insert(pred.value, id);
            }
            op => {
                let slots = match pred.value {
                    Value::Int(i) => {
                        ai.snap_int.insert(op, i, id);
                        if ai.ordered_int.get(&i).is_none() {
                            ai.ordered_int.insert(i, OpSlots::default());
                        }
                        ai.ordered_int.get_mut(&i).expect("just inserted")
                    }
                    Value::Str(s) => {
                        ai.snap_str.insert(op, s.0, id);
                        if ai.ordered_str.get(&s.0).is_none() {
                            ai.ordered_str.insert(s.0, OpSlots::default());
                        }
                        ai.ordered_str.get_mut(&s.0).expect("just inserted")
                    }
                };
                *slots.slot_mut(op) = Some(id);
            }
        }
        id
    }

    /// Releases one reference to `id`; removes the predicate from all indexes
    /// when the count reaches zero. Returns `true` if the predicate was
    /// removed entirely.
    pub fn release(&mut self, id: PredicateId) -> bool {
        let e = &mut self.entries[id.index()];
        assert!(e.live, "releasing dead predicate {id:?}");
        e.refcount -= 1;
        if e.refcount > 0 {
            return false;
        }
        e.live = false;
        PREDS_RELEASED.inc();
        let pred = e.pred;
        self.by_key.remove(&pred);
        self.live -= 1;
        self.free.push(id.0);

        let ai = self.attr_index_mut(pred.attr);
        ai.live -= 1;
        match pred.op {
            Operator::Eq => {
                ai.eq.remove(&pred.value);
            }
            Operator::Ne => {
                ai.ne.remove(pred.value);
            }
            op => match pred.value {
                Value::Int(i) => {
                    ai.snap_int.remove(op, i);
                    if let Some(slots) = ai.ordered_int.get_mut(&i) {
                        *slots.slot_mut(op) = None;
                        if slots.is_empty() {
                            ai.ordered_int.remove(&i);
                        }
                    }
                }
                Value::Str(s) => {
                    ai.snap_str.remove(op, s.0);
                    if let Some(slots) = ai.ordered_str.get_mut(&s.0) {
                        *slots.slot_mut(op) = None;
                        if slots.is_empty() {
                            ai.ordered_str.remove(&s.0);
                        }
                    }
                }
            },
        }
        true
    }

    /// Looks up an interned predicate without changing its refcount.
    pub fn lookup(&self, pred: &Predicate) -> Option<PredicateId> {
        self.by_key.get(pred).copied()
    }

    /// Phase 1 of the matching algorithm: computes the set of predicates the
    /// event satisfies, setting their bits and appending their ids to
    /// `satisfied`.
    ///
    /// The caller owns both buffers so per-event allocation is zero; `bits`
    /// must have been cleared (or never written) and is grown here if the
    /// registry outgrew it.
    ///
    /// Ordered predicates are answered by the flat [`crate::snapshot`]
    /// evaluator — a binary search per direction plus contiguous remap-table
    /// runs — never by the B+-tree (which
    /// [`PredicateIndex::eval_into_btree`] keeps available as the reference
    /// path).
    pub fn eval_into(
        &self,
        event: &Event,
        bits: &mut PredicateBitVec,
        satisfied: &mut Vec<PredicateId>,
    ) {
        SNAPSHOT_EVALS.inc();
        let satisfied_before = satisfied.len();
        bits.ensure_capacity(self.entries.len());
        for &(attr, value) in event.pairs() {
            let Some(ai) = self.attrs.get(attr.index()) else {
                continue;
            };
            // Attribute carries no live predicate: skip before any hash probe.
            if ai.live == 0 {
                continue;
            }
            // Equality: one hash probe.
            if let Some(&id) = ai.eq.get(&value) {
                bits.set(id.0);
                satisfied.push(id);
            }
            // Inequality (≠): everything with a different constant matches,
            // including constants of the other kind.
            if !ai.ne.items.is_empty() {
                for &(c, id) in &ai.ne.items {
                    if c != value {
                        bits.set(id.0);
                        satisfied.push(id);
                    }
                }
            }
            // Ordered operators: two snapshot runs on the matching kind.
            match value {
                Value::Int(x) => ai.snap_int.eval_into(x, bits, satisfied),
                Value::Str(s) => ai.snap_str.eval_into(s.0, bits, satisfied),
            }
        }
        BITS_SET.add((satisfied.len() - satisfied_before) as u64);
    }

    /// The pre-snapshot phase-1 evaluator: identical contract to
    /// [`PredicateIndex::eval_into`], but ordered predicates are resolved by
    /// two B+-tree range scans per event pair. Kept as the reference
    /// implementation for the equivalence property tests and as the baseline
    /// of the `phase1_micro` benchmark.
    pub fn eval_into_btree(
        &self,
        event: &Event,
        bits: &mut PredicateBitVec,
        satisfied: &mut Vec<PredicateId>,
    ) {
        BTREE_EVALS.inc();
        let satisfied_before = satisfied.len();
        bits.ensure_capacity(self.entries.len());
        for &(attr, value) in event.pairs() {
            let Some(ai) = self.attrs.get(attr.index()) else {
                continue;
            };
            if ai.live == 0 {
                continue;
            }
            if let Some(&id) = ai.eq.get(&value) {
                bits.set(id.0);
                satisfied.push(id);
            }
            for &(c, id) in &ai.ne.items {
                if c != value {
                    bits.set(id.0);
                    satisfied.push(id);
                }
            }
            match value {
                Value::Int(x) => {
                    scan_ordered(&ai.ordered_int, x, bits, satisfied);
                }
                Value::Str(s) => {
                    scan_ordered(&ai.ordered_str, s.0, bits, satisfied);
                }
            }
        }
        BITS_SET.add((satisfied.len() - satisfied_before) as u64);
    }

    /// Convenience wrapper for tests: evaluates and returns the satisfied set.
    pub fn eval(&self, event: &Event) -> Vec<PredicateId> {
        let mut bits = PredicateBitVec::with_capacity(self.entries.len());
        let mut out = Vec::new();
        self.eval_into(event, &mut bits, &mut out);
        out
    }

    /// Convenience wrapper for tests: the B+-tree reference evaluation.
    pub fn eval_btree(&self, event: &Event) -> Vec<PredicateId> {
        let mut bits = PredicateBitVec::with_capacity(self.entries.len());
        let mut out = Vec::new();
        self.eval_into_btree(event, &mut bits, &mut out);
        out
    }

    /// Merge-rebuilds every attribute snapshot that has pending delta or
    /// tombstone state, so subsequent matching runs overlay-free. Useful
    /// after a bulk load; never required for correctness.
    pub fn rebuild_snapshots(&mut self) {
        SNAPSHOT_FLUSHES.inc();
        for ai in &mut self.attrs {
            ai.snap_int.flush();
            ai.snap_str.flush();
        }
    }

    /// Total snapshot merge-rebuilds performed so far, across all attributes
    /// (the generation counter of the snapshot index; diagnostics/tests).
    pub fn snapshot_rebuilds(&self) -> u64 {
        self.attrs
            .iter()
            .map(|ai| ai.snap_int.rebuilds() + ai.snap_str.rebuilds())
            .sum()
    }

    /// Heap bytes held by the snapshot arrays and overlays (Fig 3c bookkeeping).
    pub fn snapshot_heap_bytes(&self) -> usize {
        self.attrs
            .iter()
            .map(|ai| ai.snap_int.heap_bytes() + ai.snap_str.heap_bytes())
            .sum()
    }

    /// Iterates over all live `(id, predicate)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PredicateId, &Predicate)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.live)
            .map(|(i, e)| (PredicateId(i as u32), &e.pred))
    }
}

/// Pushes the satisfied ordered predicates for an event value `x`:
/// * ascending over constants `c ≥ x`: `≤` always (x ≤ c), `<` when `c > x`;
/// * descending over constants `c ≤ x`: `≥` always (x ≥ c), `>` when `c < x`.
fn scan_ordered<K: Ord + Copy + std::fmt::Debug>(
    tree: &BPlusTree<K, OpSlots>,
    x: K,
    bits: &mut PredicateBitVec,
    satisfied: &mut Vec<PredicateId>,
) {
    for (c, slots) in tree.range(Bound::Included(x), Bound::Unbounded) {
        if let Some(id) = slots.le {
            bits.set(id.0);
            satisfied.push(id);
        }
        if c > x {
            if let Some(id) = slots.lt {
                bits.set(id.0);
                satisfied.push(id);
            }
        }
    }
    for (c, slots) in tree.range_rev(Bound::Unbounded, Bound::Included(x)) {
        if let Some(id) = slots.ge {
            bits.set(id.0);
            satisfied.push(id);
        }
        if c < x {
            if let Some(id) = slots.gt {
                bits.set(id.0);
                satisfied.push(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::Symbol;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn event(pairs: Vec<(AttrId, Value)>) -> Event {
        Event::from_pairs(pairs).unwrap()
    }

    #[test]
    fn interning_dedups_and_refcounts() {
        let mut idx = PredicateIndex::new();
        let p = Predicate::new(a(0), Operator::Eq, 5i64);
        let id1 = idx.intern(p);
        let id2 = idx.intern(p);
        assert_eq!(id1, id2);
        assert_eq!(idx.refcount(id1), 2);
        assert_eq!(idx.len(), 1);
        assert!(!idx.release(id1));
        assert!(idx.release(id1));
        assert!(idx.is_empty());
    }

    #[test]
    fn freed_ids_are_reused() {
        let mut idx = PredicateIndex::new();
        let id1 = idx.intern(Predicate::new(a(0), Operator::Eq, 1i64));
        idx.release(id1);
        let id2 = idx.intern(Predicate::new(a(0), Operator::Eq, 2i64));
        assert_eq!(id1, id2, "slot is recycled");
        assert_eq!(idx.predicate(id2).value, Value::Int(2));
    }

    #[test]
    fn equality_evaluation() {
        let mut idx = PredicateIndex::new();
        let hit = idx.intern(Predicate::new(a(0), Operator::Eq, 5i64));
        let _miss = idx.intern(Predicate::new(a(0), Operator::Eq, 6i64));
        let _other_attr = idx.intern(Predicate::new(a(1), Operator::Eq, 5i64));
        let sat = idx.eval(&event(vec![(a(0), Value::Int(5))]));
        assert_eq!(sat, vec![hit]);
    }

    #[test]
    fn ordered_evaluation_covers_all_operators() {
        let mut idx = PredicateIndex::new();
        // Constants 10 and 20 for every ordered operator.
        let mut ids = std::collections::HashMap::new();
        for op in [Operator::Lt, Operator::Le, Operator::Ge, Operator::Gt] {
            for c in [10i64, 20] {
                ids.insert((op, c), idx.intern(Predicate::new(a(0), op, c)));
            }
        }
        // Event value 10: matches <=10 (10<=10), <20, <=20, >=10... let's
        // enumerate: lt: 10<c -> c=20. le: 10<=c -> 10, 20. ge: 10>=c -> 10.
        // gt: 10>c -> none.
        let mut sat = idx.eval(&event(vec![(a(0), Value::Int(10))]));
        sat.sort();
        let mut expect = vec![
            ids[&(Operator::Lt, 20)],
            ids[&(Operator::Le, 10)],
            ids[&(Operator::Le, 20)],
            ids[&(Operator::Ge, 10)],
        ];
        expect.sort();
        assert_eq!(sat, expect);

        // Event value 15: lt 20, le 20, ge 10, gt 10.
        let mut sat = idx.eval(&event(vec![(a(0), Value::Int(15))]));
        sat.sort();
        let mut expect = vec![
            ids[&(Operator::Lt, 20)],
            ids[&(Operator::Le, 20)],
            ids[&(Operator::Ge, 10)],
            ids[&(Operator::Gt, 10)],
        ];
        expect.sort();
        assert_eq!(sat, expect);
    }

    #[test]
    fn ne_evaluation_matches_other_values_and_kinds() {
        let mut idx = PredicateIndex::new();
        let ne5 = idx.intern(Predicate::new(a(0), Operator::Ne, 5i64));
        let ne7 = idx.intern(Predicate::new(a(0), Operator::Ne, 7i64));
        let ne_str = idx.intern(Predicate::new(a(0), Operator::Ne, Value::Str(Symbol(0))));

        let mut sat = idx.eval(&event(vec![(a(0), Value::Int(5))]));
        sat.sort();
        let mut expect = vec![ne7, ne_str];
        expect.sort();
        assert_eq!(sat, expect, "5 != 7 and 5 != \"sym0\", but not 5 != 5");
        let _ = ne5;
    }

    #[test]
    fn string_ordered_uses_symbol_order() {
        let mut idx = PredicateIndex::new();
        let lt = idx.intern(Predicate::new(a(0), Operator::Lt, Value::Str(Symbol(5))));
        let sat = idx.eval(&event(vec![(a(0), Value::Str(Symbol(3)))]));
        assert_eq!(sat, vec![lt]);
        let sat = idx.eval(&event(vec![(a(0), Value::Str(Symbol(5)))]));
        assert!(sat.is_empty());
        // Integers never match string inequality predicates.
        let sat = idx.eval(&event(vec![(a(0), Value::Int(3))]));
        assert!(sat.is_empty());
    }

    #[test]
    fn eval_against_brute_force() {
        // Dense little universe, every operator, every value.
        let mut idx = PredicateIndex::new();
        let mut preds = Vec::new();
        for attr in 0..3u32 {
            for op in Operator::ALL {
                for c in 0..6i64 {
                    let p = Predicate::new(a(attr), op, c);
                    idx.intern(p);
                    preds.push(p);
                }
            }
        }
        for v0 in 0..6i64 {
            for v1 in 0..6i64 {
                let e = event(vec![(a(0), Value::Int(v0)), (a(2), Value::Int(v1))]);
                let mut got: Vec<Predicate> =
                    idx.eval(&e).iter().map(|&id| *idx.predicate(id)).collect();
                let mut want: Vec<Predicate> = preds
                    .iter()
                    .filter(|p| p.matches_event(&e))
                    .copied()
                    .collect();
                let key = |p: &Predicate| (p.attr.0, p.op as u8, p.value.as_int().unwrap());
                got.sort_by_key(key);
                want.sort_by_key(key);
                assert_eq!(got, want, "event ({v0}, {v1})");
            }
        }
    }

    #[test]
    fn release_removes_from_ordered_index() {
        let mut idx = PredicateIndex::new();
        let id = idx.intern(Predicate::new(a(0), Operator::Lt, 10i64));
        let id2 = idx.intern(Predicate::new(a(0), Operator::Gt, 10i64));
        idx.release(id);
        let sat = idx.eval(&event(vec![(a(0), Value::Int(5))]));
        assert!(sat.is_empty(), "released < predicate must not fire");
        let sat = idx.eval(&event(vec![(a(0), Value::Int(15))]));
        assert_eq!(sat, vec![id2], "sibling > predicate on same key survives");
    }

    #[test]
    fn bits_are_set_for_satisfied_predicates() {
        let mut idx = PredicateIndex::new();
        let id = idx.intern(Predicate::new(a(0), Operator::Ge, 3i64));
        let mut bits = PredicateBitVec::new();
        let mut sat = Vec::new();
        idx.eval_into(&event(vec![(a(0), Value::Int(4))]), &mut bits, &mut sat);
        assert!(bits.get(id.0));
        assert_eq!(sat, vec![id]);
    }

    #[test]
    fn unknown_event_attributes_are_ignored() {
        let mut idx = PredicateIndex::new();
        idx.intern(Predicate::new(a(0), Operator::Eq, 1i64));
        let sat = idx.eval(&event(vec![(a(99), Value::Int(1))]));
        assert!(sat.is_empty());
    }
}
