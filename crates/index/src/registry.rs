//! Predicate interning and the phase-1 evaluator.
//!
//! Every distinct `(attribute, operator, value)` predicate in the system is
//! interned to a dense [`PredicateId`] with a reference count (one per
//! subscription using it; "indexes are updated only if s contains a new
//! predicate that is not already in the system", paper §2.3 footnote).
//!
//! Per attribute, the registry maintains:
//!
//! * a **hash index** for `=` predicates (one lookup per event pair),
//! * a **B+-tree interval index** for `<, ≤, ≥, >` predicates (two range
//!   scans per event pair: one ascending for `<`/`≤`, one descending for
//!   `>`/`≥`),
//! * a **list index** for `≠` predicates (scan-all-but-equal).
//!
//! [`PredicateIndex::eval_into`] runs the predicate phase of the matching
//! algorithm (paper Figure 2, step 1): it sets the bit of every satisfied
//! predicate and appends the satisfied ids to a caller-provided buffer.

use crate::bitvec::PredicateBitVec;
use crate::bptree::BPlusTree;
use crate::snapshot::OrderedSnapshot;
use pubsub_types::metrics::{Counter, Histogram};
use pubsub_types::{AttrId, Event, FxHashMap, Operator, Predicate, Value};
use std::ops::Bound;

/// Phase-1 evaluations answered by the flat snapshot path.
static SNAPSHOT_EVALS: Counter = Counter::new("index.phase1.snapshot_evals");
/// Batches evaluated through the batched phase-1 entry point.
static PHASE1_BATCHES: Counter = Counter::new("index.phase1.batches");
/// Events evaluated through the batched phase-1 entry point.
static PHASE1_BATCH_EVENTS: Counter = Counter::new("index.phase1.batch_events");
/// Distribution (log2 buckets) of batch sizes seen by the batched evaluator.
static PHASE1_BATCH_SIZE: Histogram = Histogram::new("index.phase1.batch_size");
/// Phase-1 evaluations answered by the B+-tree reference path.
static BTREE_EVALS: Counter = Counter::new("index.phase1.btree_evals");
/// Predicate bits set by phase 1 (satisfied predicates, both paths).
static BITS_SET: Counter = Counter::new("index.phase1.bits_set");
/// Snapshot merge-rebuilds forced via `rebuild_snapshots`.
static SNAPSHOT_FLUSHES: Counter = Counter::new("index.snapshot.flushes");
/// Predicates interned (new id minted or refcount bumped).
static PREDS_INTERNED: Counter = Counter::new("index.predicates.interned");
/// Predicates fully released (refcount hit zero).
static PREDS_RELEASED: Counter = Counter::new("index.predicates.released");

/// Dense id of an interned predicate; indexes the predicate bit vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredicateId(pub u32);

impl PredicateId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Per-`(key, ordered-op)` slots stored in the interval index.
///
/// Because predicates are interned, at most one predicate exists per
/// `(attribute, operator, constant)`, so each slot is an `Option`.
#[derive(Debug, Default, Clone, Copy)]
struct OpSlots {
    lt: Option<PredicateId>,
    le: Option<PredicateId>,
    ge: Option<PredicateId>,
    gt: Option<PredicateId>,
}

impl OpSlots {
    fn slot_mut(&mut self, op: Operator) -> &mut Option<PredicateId> {
        match op {
            Operator::Lt => &mut self.lt,
            Operator::Le => &mut self.le,
            Operator::Ge => &mut self.ge,
            Operator::Gt => &mut self.gt,
            _ => unreachable!("OpSlots only stores ordered operators"),
        }
    }

    fn is_empty(&self) -> bool {
        self.lt.is_none() && self.le.is_none() && self.ge.is_none() && self.gt.is_none()
    }
}

/// `≠` predicates on one attribute: a vector for scanning plus a position map
/// for O(1) removal.
#[derive(Debug, Default)]
struct NeIndex {
    items: Vec<(Value, PredicateId)>,
    pos: FxHashMap<Value, usize>,
}

impl NeIndex {
    fn insert(&mut self, value: Value, id: PredicateId) {
        debug_assert!(!self.pos.contains_key(&value));
        self.pos.insert(value, self.items.len());
        self.items.push((value, id));
    }

    fn remove(&mut self, value: Value) {
        if let Some(idx) = self.pos.remove(&value) {
            self.items.swap_remove(idx);
            if idx < self.items.len() {
                self.pos.insert(self.items[idx].0, idx);
            }
        }
    }
}

/// All index structures for one attribute.
///
/// Ordered predicates are indexed twice: the B+-trees are the mutation-
/// friendly reference structure (and the baseline the benchmarks compare
/// against), while the [`OrderedSnapshot`]s are the flat evaluation fast
/// path that [`PredicateIndex::eval_into`] actually reads.
#[derive(Debug, Default)]
struct AttrIndex {
    eq: FxHashMap<Value, PredicateId>,
    ne: NeIndex,
    ordered_int: BPlusTree<i64, OpSlots>,
    ordered_str: BPlusTree<u32, OpSlots>,
    snap_int: OrderedSnapshot<i64>,
    snap_str: OrderedSnapshot<u32>,
    /// Live predicates on this attribute (any operator); 0 lets the
    /// evaluator skip the attribute before any hash probe.
    live: u32,
}

#[derive(Debug)]
struct Entry {
    pred: Predicate,
    refcount: u32,
    live: bool,
}

/// The predicate registry and phase-1 evaluator.
#[derive(Debug, Default)]
pub struct PredicateIndex {
    entries: Vec<Entry>,
    free: Vec<u32>,
    by_key: FxHashMap<Predicate, PredicateId>,
    attrs: Vec<AttrIndex>,
    live: usize,
}

impl PredicateIndex {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct live predicates (the bit-vector population).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no predicate is interned.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Capacity needed for a [`PredicateBitVec`] covering all ids.
    pub fn id_bound(&self) -> usize {
        self.entries.len()
    }

    /// The predicate for a live id.
    ///
    /// # Panics
    /// Panics if `id` is not live.
    pub fn predicate(&self, id: PredicateId) -> &Predicate {
        let e = &self.entries[id.index()];
        assert!(e.live, "predicate id {id:?} is not live");
        &e.pred
    }

    /// Number of subscriptions currently referencing `id`.
    pub fn refcount(&self, id: PredicateId) -> u32 {
        self.entries[id.index()].refcount
    }

    fn attr_index_mut(&mut self, attr: AttrId) -> &mut AttrIndex {
        let idx = attr.index();
        if self.attrs.len() <= idx {
            self.attrs.resize_with(idx + 1, AttrIndex::default);
        }
        &mut self.attrs[idx]
    }

    /// Interns `pred` (or bumps its refcount) and returns its id.
    pub fn intern(&mut self, pred: Predicate) -> PredicateId {
        PREDS_INTERNED.inc();
        if let Some(&id) = self.by_key.get(&pred) {
            self.entries[id.index()].refcount += 1;
            return id;
        }
        let id = if let Some(slot) = self.free.pop() {
            self.entries[slot as usize] = Entry {
                pred,
                refcount: 1,
                live: true,
            };
            PredicateId(slot)
        } else {
            let id = PredicateId(self.entries.len() as u32);
            self.entries.push(Entry {
                pred,
                refcount: 1,
                live: true,
            });
            id
        };
        self.by_key.insert(pred, id);
        self.live += 1;

        let ai = self.attr_index_mut(pred.attr);
        ai.live += 1;
        match pred.op {
            Operator::Eq => {
                ai.eq.insert(pred.value, id);
            }
            Operator::Ne => {
                ai.ne.insert(pred.value, id);
            }
            op => {
                let slots = match pred.value {
                    Value::Int(i) => {
                        ai.snap_int.insert(op, i, id);
                        if ai.ordered_int.get(&i).is_none() {
                            ai.ordered_int.insert(i, OpSlots::default());
                        }
                        ai.ordered_int.get_mut(&i).expect("just inserted")
                    }
                    Value::Str(s) => {
                        ai.snap_str.insert(op, s.0, id);
                        if ai.ordered_str.get(&s.0).is_none() {
                            ai.ordered_str.insert(s.0, OpSlots::default());
                        }
                        ai.ordered_str.get_mut(&s.0).expect("just inserted")
                    }
                };
                *slots.slot_mut(op) = Some(id);
            }
        }
        id
    }

    /// Releases one reference to `id`; removes the predicate from all indexes
    /// when the count reaches zero. Returns `true` if the predicate was
    /// removed entirely.
    pub fn release(&mut self, id: PredicateId) -> bool {
        let e = &mut self.entries[id.index()];
        assert!(e.live, "releasing dead predicate {id:?}");
        e.refcount -= 1;
        if e.refcount > 0 {
            return false;
        }
        e.live = false;
        PREDS_RELEASED.inc();
        let pred = e.pred;
        self.by_key.remove(&pred);
        self.live -= 1;
        self.free.push(id.0);

        let ai = self.attr_index_mut(pred.attr);
        ai.live -= 1;
        match pred.op {
            Operator::Eq => {
                ai.eq.remove(&pred.value);
            }
            Operator::Ne => {
                ai.ne.remove(pred.value);
            }
            op => match pred.value {
                Value::Int(i) => {
                    ai.snap_int.remove(op, i);
                    if let Some(slots) = ai.ordered_int.get_mut(&i) {
                        *slots.slot_mut(op) = None;
                        if slots.is_empty() {
                            ai.ordered_int.remove(&i);
                        }
                    }
                }
                Value::Str(s) => {
                    ai.snap_str.remove(op, s.0);
                    if let Some(slots) = ai.ordered_str.get_mut(&s.0) {
                        *slots.slot_mut(op) = None;
                        if slots.is_empty() {
                            ai.ordered_str.remove(&s.0);
                        }
                    }
                }
            },
        }
        true
    }

    /// Looks up an interned predicate without changing its refcount.
    pub fn lookup(&self, pred: &Predicate) -> Option<PredicateId> {
        self.by_key.get(pred).copied()
    }

    /// Phase 1 of the matching algorithm: computes the set of predicates the
    /// event satisfies, setting their bits and appending their ids to
    /// `satisfied`.
    ///
    /// The caller owns both buffers so per-event allocation is zero; `bits`
    /// must have been cleared (or never written) and is grown here if the
    /// registry outgrew it.
    ///
    /// Ordered predicates are answered by the flat [`crate::snapshot`]
    /// evaluator — a binary search per direction plus contiguous remap-table
    /// runs — never by the B+-tree (which
    /// [`PredicateIndex::eval_into_btree`] keeps available as the reference
    /// path).
    pub fn eval_into(
        &self,
        event: &Event,
        bits: &mut PredicateBitVec,
        satisfied: &mut Vec<PredicateId>,
    ) {
        SNAPSHOT_EVALS.inc();
        let satisfied_before = satisfied.len();
        bits.ensure_capacity(self.entries.len());
        for &(attr, value) in event.pairs() {
            let Some(ai) = self.attrs.get(attr.index()) else {
                continue;
            };
            // Attribute carries no live predicate: skip before any hash probe.
            if ai.live == 0 {
                continue;
            }
            // Equality: one hash probe.
            if let Some(&id) = ai.eq.get(&value) {
                bits.set(id.0);
                satisfied.push(id);
            }
            // Inequality (≠): everything with a different constant matches,
            // including constants of the other kind.
            if !ai.ne.items.is_empty() {
                for &(c, id) in &ai.ne.items {
                    if c != value {
                        bits.set(id.0);
                        satisfied.push(id);
                    }
                }
            }
            // Ordered operators: two snapshot runs on the matching kind.
            match value {
                Value::Int(x) => ai.snap_int.eval_into(x, bits, satisfied),
                Value::Str(s) => ai.snap_str.eval_into(s.0, bits, satisfied),
            }
        }
        BITS_SET.add((satisfied.len() - satisfied_before) as u64);
    }

    /// Batched phase 1: evaluates a whole batch of events **attribute-major**
    /// against one reusable [`Phase1Batch`] scratch.
    ///
    /// Instead of touching every attribute's indexes once per `(event,
    /// attribute)` pair, the batch's values are bucketed per attribute and
    /// each attribute's hash/≠/snapshot indexes are traversed once for the
    /// whole batch: equality and `≠` probe per bucketed value, and the
    /// ordered snapshots see the bucket *sorted ascending*, which turns
    /// their per-direction binary searches into one monotone gallop over the
    /// breakpoint array (see [`crate::snapshot`]) with word-parallel
    /// bit-setting through precomputed block masks.
    ///
    /// The scan records only *run boundaries* per event; call
    /// [`PredicateIndex::materialize`] on each event (in any order, one at a
    /// time) to fill the batch's shared output slot, after which
    /// `batch.satisfied(i)` and `batch.bits(i)` hold event `i`'s satisfied
    /// ids and bit vector (ids in a different order than the scalar path —
    /// attribute-major, not event-major). Materialized output is exactly
    /// equivalent to [`PredicateIndex::eval_into`] per event. All scratch in
    /// `batch` is retained across calls, so a warmed-up batch allocates
    /// nothing.
    pub fn eval_batch_into(&self, events: &[Event], batch: &mut Phase1Batch) {
        PHASE1_BATCHES.inc();
        PHASE1_BATCH_EVENTS.add(events.len() as u64);
        PHASE1_BATCH_SIZE.record(events.len() as u64);
        SNAPSHOT_EVALS.add(events.len() as u64);
        let fingerprint = batch.capacity_fingerprint();
        batch.len = events.len();
        batch.cursor = None;
        if batch.extras.len() < events.len() {
            batch.extras.resize_with(events.len(), Vec::new);
            batch.runs.resize_with(events.len(), Vec::new);
        }
        if batch.buckets.len() < self.attrs.len() {
            batch.buckets.resize_with(self.attrs.len(), Vec::new);
        }
        batch.touched.clear();
        for i in 0..events.len() {
            batch.extras[i].clear();
            batch.runs[i].clear();
        }
        // Bucket the batch attribute-major: (value, event slot) per attribute.
        for (i, event) in events.iter().enumerate() {
            for &(attr, value) in event.pairs() {
                let Some(ai) = self.attrs.get(attr.index()) else {
                    continue;
                };
                if ai.live == 0 {
                    continue;
                }
                let bucket = &mut batch.buckets[attr.index()];
                if bucket.is_empty() {
                    batch.touched.push(attr.0);
                }
                bucket.push((value, i as u32));
            }
        }
        // One pass over each touched attribute's indexes for the whole batch.
        // Only boundaries are recorded here; the (possibly large) per-event
        // output is materialized later, one cache-hot event at a time.
        for t in 0..batch.touched.len() {
            let a = batch.touched[t] as usize;
            let ai = &self.attrs[a];
            let bucket = std::mem::take(&mut batch.buckets[a]);
            batch.sorted_int.clear();
            batch.sorted_str.clear();
            // Equality-only attributes (both ordered snapshots empty) skip
            // value collection and the sort entirely — there is no
            // breakpoint array to scan, so the batch degenerates to the
            // same hash probes the scalar path does.
            let want_int = !ai.snap_int.is_empty();
            let want_str = !ai.snap_str.is_empty();
            for &(value, ev) in &bucket {
                let i = ev as usize;
                if let Some(&id) = ai.eq.get(&value) {
                    batch.extras[i].push(id);
                }
                for &(c, id) in &ai.ne.items {
                    if c != value {
                        batch.extras[i].push(id);
                    }
                }
                match value {
                    Value::Int(x) if want_int => batch.sorted_int.push((x, ev)),
                    Value::Str(s) if want_str => batch.sorted_str.push((s.0, ev)),
                    _ => {}
                }
            }
            batch.sorted_int.sort_unstable();
            batch.sorted_str.sort_unstable();
            let runs = &mut batch.runs;
            ai.snap_int
                .record_batch_runs(&batch.sorted_int, |suffix, ev, b, d| {
                    runs[ev as usize].push(RunRec {
                        attr: a as u32,
                        str_kind: false,
                        suffix,
                        b,
                        d,
                    });
                });
            ai.snap_str
                .record_batch_runs(&batch.sorted_str, |suffix, ev, b, d| {
                    runs[ev as usize].push(RunRec {
                        attr: a as u32,
                        str_kind: true,
                        suffix,
                        b,
                        d,
                    });
                });
            let mut bucket = bucket;
            bucket.clear();
            batch.buckets[a] = bucket;
        }
        if batch.capacity_fingerprint() != fingerprint {
            batch.regrowths += 1;
        }
    }

    /// Materializes event `i` of the last [`PredicateIndex::eval_batch_into`]
    /// call: emits the recorded run boundaries and eq/≠ hits into the batch's
    /// single reusable output slot, after which [`Phase1Batch::satisfied`]
    /// and [`Phase1Batch::bits`] serve event `i`. One event is live at a
    /// time — materializing event `i + 1` invalidates event `i`'s slices —
    /// which is what keeps large batches cache-resident: the attribute-major
    /// scan writes only boundary records, and each event's full output is
    /// built right before its phase 2 consumes it.
    ///
    /// The recorded boundaries are only valid against the exact index state
    /// they were computed from: any intern/release/rebuild between
    /// `eval_batch_into` and this call invalidates the batch.
    ///
    /// # Panics
    /// Panics if `i` is outside the last batch.
    pub fn materialize(&self, batch: &mut Phase1Batch, i: usize) {
        assert!(i < batch.len, "event {i} outside batch of {}", batch.len);
        batch.cur_sat.clear();
        batch.cur_bits.clear();
        batch.cur_bits.ensure_capacity(self.entries.len());
        let extras = &batch.extras[i];
        batch.cur_bits.set_from_slice(extras);
        batch.cur_sat.extend_from_slice(extras);
        for r in &batch.runs[i] {
            let ai = &self.attrs[r.attr as usize];
            if r.str_kind {
                ai.snap_str.emit_recorded(
                    r.suffix,
                    r.b,
                    r.d,
                    &mut batch.cur_bits,
                    &mut batch.cur_sat,
                );
            } else {
                ai.snap_int.emit_recorded(
                    r.suffix,
                    r.b,
                    r.d,
                    &mut batch.cur_bits,
                    &mut batch.cur_sat,
                );
            }
        }
        batch.cursor = Some(i);
        BITS_SET.add(batch.cur_sat.len() as u64);
    }

    /// The pre-snapshot phase-1 evaluator: identical contract to
    /// [`PredicateIndex::eval_into`], but ordered predicates are resolved by
    /// two B+-tree range scans per event pair. Kept as the reference
    /// implementation for the equivalence property tests and as the baseline
    /// of the `phase1_micro` benchmark.
    pub fn eval_into_btree(
        &self,
        event: &Event,
        bits: &mut PredicateBitVec,
        satisfied: &mut Vec<PredicateId>,
    ) {
        BTREE_EVALS.inc();
        let satisfied_before = satisfied.len();
        bits.ensure_capacity(self.entries.len());
        for &(attr, value) in event.pairs() {
            let Some(ai) = self.attrs.get(attr.index()) else {
                continue;
            };
            if ai.live == 0 {
                continue;
            }
            if let Some(&id) = ai.eq.get(&value) {
                bits.set(id.0);
                satisfied.push(id);
            }
            for &(c, id) in &ai.ne.items {
                if c != value {
                    bits.set(id.0);
                    satisfied.push(id);
                }
            }
            match value {
                Value::Int(x) => {
                    scan_ordered(&ai.ordered_int, x, bits, satisfied);
                }
                Value::Str(s) => {
                    scan_ordered(&ai.ordered_str, s.0, bits, satisfied);
                }
            }
        }
        BITS_SET.add((satisfied.len() - satisfied_before) as u64);
    }

    /// Convenience wrapper for tests: evaluates and returns the satisfied set.
    pub fn eval(&self, event: &Event) -> Vec<PredicateId> {
        let mut bits = PredicateBitVec::with_capacity(self.entries.len());
        let mut out = Vec::new();
        self.eval_into(event, &mut bits, &mut out);
        out
    }

    /// Convenience wrapper for tests: the B+-tree reference evaluation.
    pub fn eval_btree(&self, event: &Event) -> Vec<PredicateId> {
        let mut bits = PredicateBitVec::with_capacity(self.entries.len());
        let mut out = Vec::new();
        self.eval_into_btree(event, &mut bits, &mut out);
        out
    }

    /// Merge-rebuilds every attribute snapshot that has pending delta or
    /// tombstone state, so subsequent matching runs overlay-free. Useful
    /// after a bulk load; never required for correctness.
    pub fn rebuild_snapshots(&mut self) {
        SNAPSHOT_FLUSHES.inc();
        for ai in &mut self.attrs {
            ai.snap_int.flush();
            ai.snap_str.flush();
        }
    }

    /// Total snapshot merge-rebuilds performed so far, across all attributes
    /// (the generation counter of the snapshot index; diagnostics/tests).
    pub fn snapshot_rebuilds(&self) -> u64 {
        self.attrs
            .iter()
            .map(|ai| ai.snap_int.rebuilds() + ai.snap_str.rebuilds())
            .sum()
    }

    /// Heap bytes held by the snapshot arrays and overlays (Fig 3c bookkeeping).
    pub fn snapshot_heap_bytes(&self) -> usize {
        self.attrs
            .iter()
            .map(|ai| ai.snap_int.heap_bytes() + ai.snap_str.heap_bytes())
            .sum()
    }

    /// Iterates over all live `(id, predicate)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PredicateId, &Predicate)> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.live)
            .map(|(i, e)| (PredicateId(i as u32), &e.pred))
    }
}

/// One recorded snapshot run: which attribute/kind/direction, plus the
/// snapshot and delta-overlay boundaries the gallop landed on. 16 bytes per
/// run — the whole attribute-major pass writes only these, deferring the
/// (possibly megabytes of) satisfied-id/bit output to
/// [`PredicateIndex::materialize`].
#[derive(Debug, Clone, Copy)]
struct RunRec {
    /// Attribute slot in the registry's attribute table.
    attr: u32,
    /// `false` = integer snapshot, `true` = interned-string snapshot.
    str_kind: bool,
    /// Direction: `true` = upper (`<`/`≤`, suffix run), `false` = lower.
    suffix: bool,
    /// Snapshot breakpoint boundary.
    b: u32,
    /// Delta-overlay boundary.
    d: u32,
}

/// Reusable scratch + per-event results for one batched phase-1 evaluation
/// ([`PredicateIndex::eval_batch_into`]).
///
/// The batched evaluator stores only *boundary records* per event (a few
/// hundred bytes each); the full satisfied-id list and bit vector live in a
/// **single** output slot shared by the whole batch, filled one event at a
/// time by [`PredicateIndex::materialize`]. That keeps a large batch's
/// working set cache-resident instead of streaming `batch × output` bytes
/// through memory twice. Everything is retained across calls, so a
/// warmed-up batch performs zero steady-state allocation — tracked by a
/// capacity fingerprint and surfaced through
/// [`Phase1Batch::scratch_regrowths`].
#[derive(Debug, Default)]
pub struct Phase1Batch {
    /// Events in the current batch (slots beyond this are stale scratch).
    len: usize,
    /// Per-event eq/≠ hits (small; recorded eagerly during the scan).
    extras: Vec<Vec<PredicateId>>,
    /// Per-event recorded snapshot runs.
    runs: Vec<Vec<RunRec>>,
    /// The one materialized satisfied-id list (attribute-major order).
    cur_sat: Vec<PredicateId>,
    /// The one materialized predicate bit vector.
    cur_bits: PredicateBitVec,
    /// Which event the output slot currently holds.
    cursor: Option<usize>,
    /// Attribute ids touched by the current batch.
    touched: Vec<u32>,
    /// Per-attribute `(value, event slot)` buckets.
    buckets: Vec<Vec<(Value, u32)>>,
    /// Sorted `(int value, event slot)` scratch for the snapshot gallop.
    sorted_int: Vec<(i64, u32)>,
    /// Sorted `(symbol id, event slot)` scratch for the snapshot gallop.
    sorted_str: Vec<(u32, u32)>,
    /// Times a call grew any scratch capacity after the first.
    regrowths: u64,
}

impl Phase1Batch {
    /// Creates an empty batch scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events evaluated by the most recent call.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events have been evaluated.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Satisfied predicate ids for event `i` of the last batch. Event `i`
    /// must be the one currently materialized
    /// ([`PredicateIndex::materialize`]).
    ///
    /// Ids arrive attribute-major (all of attribute A's hits, then B's), not
    /// in the scalar evaluator's event-major order — equal as *sets*.
    ///
    /// # Panics
    /// Panics if event `i` is not the materialized event.
    pub fn satisfied(&self, i: usize) -> &[PredicateId] {
        assert_eq!(
            self.cursor,
            Some(i),
            "event {i} is not materialized (call PredicateIndex::materialize first)"
        );
        &self.cur_sat
    }

    /// Predicate bit vector for event `i` of the last batch. Event `i` must
    /// be the one currently materialized ([`PredicateIndex::materialize`]).
    ///
    /// # Panics
    /// Panics if event `i` is not the materialized event.
    pub fn bits(&self, i: usize) -> &PredicateBitVec {
        assert_eq!(
            self.cursor,
            Some(i),
            "event {i} is not materialized (call PredicateIndex::materialize first)"
        );
        &self.cur_bits
    }

    /// Resets event `i`'s state (keeping all capacity) — called by engines
    /// as soon as the event's phase 2 has consumed it. Clears the shared
    /// output slot if it holds event `i`.
    pub fn clear_event(&mut self, i: usize) {
        if self.cursor == Some(i) {
            self.cursor = None;
            self.cur_sat.clear();
            self.cur_bits.clear();
        }
        if let Some(e) = self.extras.get_mut(i) {
            e.clear();
        }
        if let Some(r) = self.runs.get_mut(i) {
            r.clear();
        }
    }

    /// Times a call to [`PredicateIndex::eval_batch_into`] had to grow any
    /// scratch buffer after the warm-up call. A steady-state workload keeps
    /// this flat; the zero-allocation tests assert exactly that.
    pub fn scratch_regrowths(&self) -> u64 {
        self.regrowths
    }

    /// Sum of every scratch capacity, in bytes-ish units — any allocation in
    /// the hot path changes this.
    fn capacity_fingerprint(&self) -> usize {
        let mut fp = self.extras.capacity()
            + self.runs.capacity()
            + self.cur_sat.capacity()
            + self.cur_bits.heap_bytes()
            + self.touched.capacity()
            + self.buckets.capacity()
            + self.sorted_int.capacity()
            + self.sorted_str.capacity();
        for e in &self.extras {
            fp += e.capacity();
        }
        for r in &self.runs {
            fp += r.capacity();
        }
        for bk in &self.buckets {
            fp += bk.capacity();
        }
        fp
    }
}

/// Pushes the satisfied ordered predicates for an event value `x`:
/// * ascending over constants `c ≥ x`: `≤` always (x ≤ c), `<` when `c > x`;
/// * descending over constants `c ≤ x`: `≥` always (x ≥ c), `>` when `c < x`.
fn scan_ordered<K: Ord + Copy + std::fmt::Debug>(
    tree: &BPlusTree<K, OpSlots>,
    x: K,
    bits: &mut PredicateBitVec,
    satisfied: &mut Vec<PredicateId>,
) {
    for (c, slots) in tree.range(Bound::Included(x), Bound::Unbounded) {
        if let Some(id) = slots.le {
            bits.set(id.0);
            satisfied.push(id);
        }
        if c > x {
            if let Some(id) = slots.lt {
                bits.set(id.0);
                satisfied.push(id);
            }
        }
    }
    for (c, slots) in tree.range_rev(Bound::Unbounded, Bound::Included(x)) {
        if let Some(id) = slots.ge {
            bits.set(id.0);
            satisfied.push(id);
        }
        if c < x {
            if let Some(id) = slots.gt {
                bits.set(id.0);
                satisfied.push(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::Symbol;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn event(pairs: Vec<(AttrId, Value)>) -> Event {
        Event::from_pairs(pairs).unwrap()
    }

    #[test]
    fn interning_dedups_and_refcounts() {
        let mut idx = PredicateIndex::new();
        let p = Predicate::new(a(0), Operator::Eq, 5i64);
        let id1 = idx.intern(p);
        let id2 = idx.intern(p);
        assert_eq!(id1, id2);
        assert_eq!(idx.refcount(id1), 2);
        assert_eq!(idx.len(), 1);
        assert!(!idx.release(id1));
        assert!(idx.release(id1));
        assert!(idx.is_empty());
    }

    #[test]
    fn freed_ids_are_reused() {
        let mut idx = PredicateIndex::new();
        let id1 = idx.intern(Predicate::new(a(0), Operator::Eq, 1i64));
        idx.release(id1);
        let id2 = idx.intern(Predicate::new(a(0), Operator::Eq, 2i64));
        assert_eq!(id1, id2, "slot is recycled");
        assert_eq!(idx.predicate(id2).value, Value::Int(2));
    }

    #[test]
    fn equality_evaluation() {
        let mut idx = PredicateIndex::new();
        let hit = idx.intern(Predicate::new(a(0), Operator::Eq, 5i64));
        let _miss = idx.intern(Predicate::new(a(0), Operator::Eq, 6i64));
        let _other_attr = idx.intern(Predicate::new(a(1), Operator::Eq, 5i64));
        let sat = idx.eval(&event(vec![(a(0), Value::Int(5))]));
        assert_eq!(sat, vec![hit]);
    }

    #[test]
    fn ordered_evaluation_covers_all_operators() {
        let mut idx = PredicateIndex::new();
        // Constants 10 and 20 for every ordered operator.
        let mut ids = std::collections::HashMap::new();
        for op in [Operator::Lt, Operator::Le, Operator::Ge, Operator::Gt] {
            for c in [10i64, 20] {
                ids.insert((op, c), idx.intern(Predicate::new(a(0), op, c)));
            }
        }
        // Event value 10: matches <=10 (10<=10), <20, <=20, >=10... let's
        // enumerate: lt: 10<c -> c=20. le: 10<=c -> 10, 20. ge: 10>=c -> 10.
        // gt: 10>c -> none.
        let mut sat = idx.eval(&event(vec![(a(0), Value::Int(10))]));
        sat.sort();
        let mut expect = vec![
            ids[&(Operator::Lt, 20)],
            ids[&(Operator::Le, 10)],
            ids[&(Operator::Le, 20)],
            ids[&(Operator::Ge, 10)],
        ];
        expect.sort();
        assert_eq!(sat, expect);

        // Event value 15: lt 20, le 20, ge 10, gt 10.
        let mut sat = idx.eval(&event(vec![(a(0), Value::Int(15))]));
        sat.sort();
        let mut expect = vec![
            ids[&(Operator::Lt, 20)],
            ids[&(Operator::Le, 20)],
            ids[&(Operator::Ge, 10)],
            ids[&(Operator::Gt, 10)],
        ];
        expect.sort();
        assert_eq!(sat, expect);
    }

    #[test]
    fn ne_evaluation_matches_other_values_and_kinds() {
        let mut idx = PredicateIndex::new();
        let ne5 = idx.intern(Predicate::new(a(0), Operator::Ne, 5i64));
        let ne7 = idx.intern(Predicate::new(a(0), Operator::Ne, 7i64));
        let ne_str = idx.intern(Predicate::new(a(0), Operator::Ne, Value::Str(Symbol(0))));

        let mut sat = idx.eval(&event(vec![(a(0), Value::Int(5))]));
        sat.sort();
        let mut expect = vec![ne7, ne_str];
        expect.sort();
        assert_eq!(sat, expect, "5 != 7 and 5 != \"sym0\", but not 5 != 5");
        let _ = ne5;
    }

    #[test]
    fn string_ordered_uses_symbol_order() {
        let mut idx = PredicateIndex::new();
        let lt = idx.intern(Predicate::new(a(0), Operator::Lt, Value::Str(Symbol(5))));
        let sat = idx.eval(&event(vec![(a(0), Value::Str(Symbol(3)))]));
        assert_eq!(sat, vec![lt]);
        let sat = idx.eval(&event(vec![(a(0), Value::Str(Symbol(5)))]));
        assert!(sat.is_empty());
        // Integers never match string inequality predicates.
        let sat = idx.eval(&event(vec![(a(0), Value::Int(3))]));
        assert!(sat.is_empty());
    }

    #[test]
    fn eval_against_brute_force() {
        // Dense little universe, every operator, every value.
        let mut idx = PredicateIndex::new();
        let mut preds = Vec::new();
        for attr in 0..3u32 {
            for op in Operator::ALL {
                for c in 0..6i64 {
                    let p = Predicate::new(a(attr), op, c);
                    idx.intern(p);
                    preds.push(p);
                }
            }
        }
        for v0 in 0..6i64 {
            for v1 in 0..6i64 {
                let e = event(vec![(a(0), Value::Int(v0)), (a(2), Value::Int(v1))]);
                let mut got: Vec<Predicate> =
                    idx.eval(&e).iter().map(|&id| *idx.predicate(id)).collect();
                let mut want: Vec<Predicate> = preds
                    .iter()
                    .filter(|p| p.matches_event(&e))
                    .copied()
                    .collect();
                let key = |p: &Predicate| (p.attr.0, p.op as u8, p.value.as_int().unwrap());
                got.sort_by_key(key);
                want.sort_by_key(key);
                assert_eq!(got, want, "event ({v0}, {v1})");
            }
        }
    }

    #[test]
    fn release_removes_from_ordered_index() {
        let mut idx = PredicateIndex::new();
        let id = idx.intern(Predicate::new(a(0), Operator::Lt, 10i64));
        let id2 = idx.intern(Predicate::new(a(0), Operator::Gt, 10i64));
        idx.release(id);
        let sat = idx.eval(&event(vec![(a(0), Value::Int(5))]));
        assert!(sat.is_empty(), "released < predicate must not fire");
        let sat = idx.eval(&event(vec![(a(0), Value::Int(15))]));
        assert_eq!(sat, vec![id2], "sibling > predicate on same key survives");
    }

    #[test]
    fn bits_are_set_for_satisfied_predicates() {
        let mut idx = PredicateIndex::new();
        let id = idx.intern(Predicate::new(a(0), Operator::Ge, 3i64));
        let mut bits = PredicateBitVec::new();
        let mut sat = Vec::new();
        idx.eval_into(&event(vec![(a(0), Value::Int(4))]), &mut bits, &mut sat);
        assert!(bits.get(id.0));
        assert_eq!(sat, vec![id]);
    }

    #[test]
    fn unknown_event_attributes_are_ignored() {
        let mut idx = PredicateIndex::new();
        idx.intern(Predicate::new(a(0), Operator::Eq, 1i64));
        let sat = idx.eval(&event(vec![(a(99), Value::Int(1))]));
        assert!(sat.is_empty());
    }

    /// Runs `events` through both the scalar and batched evaluators and
    /// asserts identical satisfied sets and bit vectors per event.
    fn assert_batch_matches_scalar(idx: &PredicateIndex, events: &[Event]) {
        let mut batch = Phase1Batch::new();
        idx.eval_batch_into(events, &mut batch);
        assert_eq!(batch.len(), events.len());
        for (i, e) in events.iter().enumerate() {
            idx.materialize(&mut batch, i);
            let mut want = idx.eval(e);
            want.sort();
            let mut got: Vec<PredicateId> = batch.satisfied(i).to_vec();
            got.sort();
            assert_eq!(got, want, "event {i}: {e:?}");
            for &id in &got {
                assert!(batch.bits(i).get(id.0), "event {i} bit {id:?}");
            }
            assert_eq!(
                batch.bits(i).count_ones(),
                got.len(),
                "event {i}: spurious bits"
            );
        }
    }

    #[test]
    fn batched_agrees_with_scalar_across_operators_and_kinds() {
        let mut idx = PredicateIndex::new();
        for attr in 0..3u32 {
            for op in Operator::ALL {
                for c in 0..8i64 {
                    idx.intern(Predicate::new(a(attr), op, c));
                }
                for s in 0..4u32 {
                    idx.intern(Predicate::new(a(attr), op, Value::Str(Symbol(s))));
                }
            }
        }
        let mut events = Vec::new();
        for v in 0..10i64 {
            events.push(event(vec![
                (a(0), Value::Int(v)),
                (a(1), Value::Int(9 - v)),
                (a(2), Value::Str(Symbol((v % 5) as u32))),
            ]));
        }
        // Duplicate values across the batch exercise the boundary cache.
        events.push(event(vec![(a(0), Value::Int(3)), (a(1), Value::Int(3))]));
        events.push(event(vec![(a(0), Value::Int(3))]));
        events.push(event(vec![(a(99), Value::Int(1))]));
        assert_batch_matches_scalar(&idx, &events);
    }

    #[test]
    fn batched_agrees_under_churn_and_delta_overlay() {
        let mut idx = PredicateIndex::new();
        let mut ids = Vec::new();
        for c in 0..64i64 {
            ids.push(idx.intern(Predicate::new(a(0), Operator::Le, c)));
        }
        idx.rebuild_snapshots();
        // Tombstones and a delta overlay on top of the flushed snapshot.
        for &i in &[3usize, 17, 40, 63] {
            idx.release(ids[i]);
        }
        for c in 100..110i64 {
            idx.intern(Predicate::new(a(0), Operator::Ge, c));
        }
        let events: Vec<Event> = (0..120)
            .step_by(7)
            .map(|v| event(vec![(a(0), Value::Int(v))]))
            .collect();
        assert_batch_matches_scalar(&idx, &events);
    }

    #[test]
    fn batched_empty_batch_and_empty_index() {
        let idx = PredicateIndex::new();
        let mut batch = Phase1Batch::new();
        idx.eval_batch_into(&[], &mut batch);
        assert!(batch.is_empty());
        let events = vec![event(vec![(a(0), Value::Int(1))])];
        idx.eval_batch_into(&events, &mut batch);
        assert_eq!(batch.len(), 1);
        idx.materialize(&mut batch, 0);
        assert!(batch.satisfied(0).is_empty());
    }

    #[test]
    fn batch_scratch_does_not_regrow_in_steady_state() {
        let mut idx = PredicateIndex::new();
        for op in Operator::ALL {
            for c in 0..32i64 {
                idx.intern(Predicate::new(a(0), op, c));
            }
        }
        let events: Vec<Event> = (0..64)
            .map(|v| event(vec![(a(0), Value::Int(v % 40))]))
            .collect();
        let mut batch = Phase1Batch::new();
        // Warm-up may allocate; afterwards the fingerprint must hold still.
        idx.eval_batch_into(&events, &mut batch);
        idx.eval_batch_into(&events, &mut batch);
        let after_warmup = batch.scratch_regrowths();
        for _ in 0..16 {
            idx.eval_batch_into(&events, &mut batch);
            for i in 0..events.len() {
                idx.materialize(&mut batch, i);
                batch.clear_event(i);
            }
        }
        assert_eq!(
            batch.scratch_regrowths(),
            after_warmup,
            "steady-state batches must not allocate"
        );
    }

    #[test]
    fn clear_event_resets_slot_for_reuse() {
        let mut idx = PredicateIndex::new();
        let id = idx.intern(Predicate::new(a(0), Operator::Ge, 0i64));
        let events = vec![event(vec![(a(0), Value::Int(5))])];
        let mut batch = Phase1Batch::new();
        idx.eval_batch_into(&events, &mut batch);
        idx.materialize(&mut batch, 0);
        assert_eq!(batch.satisfied(0), &[id]);
        batch.clear_event(0);
        // The cleared slot re-materializes empty (its records are gone)...
        idx.materialize(&mut batch, 0);
        assert!(batch.satisfied(0).is_empty());
        assert_eq!(batch.bits(0).count_ones(), 0);
        // ...and the next batch refills it.
        idx.eval_batch_into(&events, &mut batch);
        idx.materialize(&mut batch, 0);
        assert_eq!(batch.satisfied(0), &[id]);
    }
}
