//! A main-memory B+-tree.
//!
//! The paper evaluates inequality predicates with "simple B-Trees" (§2.3);
//! this module provides that substrate from scratch. It is an arena-based
//! B+-tree: nodes live in a `Vec` and refer to each other by dense `u32` ids,
//! which keeps the structure compact, allocation-light and free of `unsafe`.
//! Leaves are doubly linked so ascending and descending range scans — the
//! access pattern of the predicate phase — are sequential walks.
//!
//! The tree supports insert, point lookup, removal (with borrow/merge
//! rebalancing) and bidirectional bounded range scans.

use std::fmt::Debug;
use std::ops::Bound;

/// Maximum number of keys per node. Chosen so a leaf of `(i64, u64)` pairs
/// spans a handful of cache lines; splits occur at `MAX_KEYS`, rebalancing at
/// `MIN_KEYS`.
const MAX_KEYS: usize = 16;
const MIN_KEYS: usize = MAX_KEYS / 2;

const NIL: u32 = u32::MAX;

#[derive(Debug)]
enum Node<K, V> {
    Internal {
        /// Separator keys; `keys[i]` is the smallest key reachable through
        /// `children[i + 1]`.
        keys: Vec<K>,
        children: Vec<u32>,
    },
    Leaf {
        keys: Vec<K>,
        values: Vec<V>,
        next: u32,
        prev: u32,
    },
    /// Slot on the free list.
    Free,
}

/// An ordered map from `K` to `V` backed by a B+-tree.
#[derive(Debug)]
pub struct BPlusTree<K, V> {
    nodes: Vec<Node<K, V>>,
    free: Vec<u32>,
    root: u32,
    len: usize,
}

impl<K: Ord + Copy + Debug, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy + Debug, V> BPlusTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        let nodes = vec![Node::Leaf {
            keys: Vec::new(),
            values: Vec::new(),
            next: NIL,
            prev: NIL,
        }];
        Self {
            nodes,
            free: Vec::new(),
            root: 0,
            len: 0,
        }
    }

    /// Number of key/value pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn alloc(&mut self, node: Node<K, V>) -> u32 {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            let id = self.nodes.len() as u32;
            self.nodes.push(node);
            id
        }
    }

    fn dealloc(&mut self, id: u32) {
        self.nodes[id as usize] = Node::Free;
        self.free.push(id);
    }

    /// Index of the child to descend into for `key`.
    /// Separator keys are "smallest key of the right subtree", so equal keys
    /// descend right.
    fn child_slot(keys: &[K], key: &K) -> usize {
        keys.partition_point(|k| k <= key)
    }

    /// Returns a reference to the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Internal { keys, children } => {
                    id = children[Self::child_slot(keys, key)];
                }
                Node::Leaf { keys, values, .. } => {
                    return keys.binary_search(key).ok().map(|i| &values[i]);
                }
                Node::Free => unreachable!("descended into free node"),
            }
        }
    }

    /// Returns a mutable reference to the value for `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Internal { keys, children } => {
                    id = children[Self::child_slot(keys, key)];
                }
                Node::Leaf { keys, .. } => {
                    let slot = keys.binary_search(key).ok()?;
                    match &mut self.nodes[id as usize] {
                        Node::Leaf { values, .. } => return Some(&mut values[slot]),
                        _ => unreachable!(),
                    }
                }
                Node::Free => unreachable!("descended into free node"),
            }
        }
    }

    /// Inserts `key → value`, returning the previous value if the key was
    /// present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.insert_rec(self.root, key, value) {
            InsertResult::Done(old) => old,
            InsertResult::Split(sep, right) => {
                // Grow a new root.
                let old_root = self.root;
                let new_root = self.alloc(Node::Internal {
                    keys: vec![sep],
                    children: vec![old_root, right],
                });
                self.root = new_root;
                None
            }
        }
    }

    fn insert_rec(&mut self, id: u32, key: K, value: V) -> InsertResult<K, V> {
        // Figure out where to go without holding a borrow across the
        // recursive call.
        let child = match &self.nodes[id as usize] {
            Node::Internal { keys, children } => Some(children[Self::child_slot(keys, &key)]),
            Node::Leaf { .. } => None,
            Node::Free => unreachable!(),
        };

        if let Some(child) = child {
            return match self.insert_rec(child, key, value) {
                InsertResult::Done(old) => InsertResult::Done(old),
                InsertResult::Split(sep, right) => {
                    let Node::Internal { keys, children } = &mut self.nodes[id as usize] else {
                        unreachable!()
                    };
                    let slot = keys.partition_point(|k| *k <= sep);
                    keys.insert(slot, sep);
                    children.insert(slot + 1, right);
                    if keys.len() > MAX_KEYS {
                        self.split_internal(id)
                    } else {
                        InsertResult::Done(None)
                    }
                }
            };
        }

        // Leaf insertion.
        let Node::Leaf { keys, values, .. } = &mut self.nodes[id as usize] else {
            unreachable!()
        };
        match keys.binary_search(&key) {
            Ok(slot) => {
                let old = std::mem::replace(&mut values[slot], value);
                InsertResult::Done(Some(old))
            }
            Err(slot) => {
                keys.insert(slot, key);
                values.insert(slot, value);
                self.len += 1;
                if keys.len() > MAX_KEYS {
                    self.split_leaf(id)
                } else {
                    InsertResult::Done(None)
                }
            }
        }
    }

    fn split_leaf(&mut self, id: u32) -> InsertResult<K, V> {
        let (right_keys, right_values, old_next) = {
            let Node::Leaf {
                keys, values, next, ..
            } = &mut self.nodes[id as usize]
            else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            (keys.split_off(mid), values.split_off(mid), *next)
        };
        let sep = right_keys[0];
        let right = self.alloc(Node::Leaf {
            keys: right_keys,
            values: right_values,
            next: old_next,
            prev: id,
        });
        if old_next != NIL {
            if let Node::Leaf { prev, .. } = &mut self.nodes[old_next as usize] {
                *prev = right;
            }
        }
        if let Node::Leaf { next, .. } = &mut self.nodes[id as usize] {
            *next = right;
        }
        InsertResult::Split(sep, right)
    }

    fn split_internal(&mut self, id: u32) -> InsertResult<K, V> {
        let (sep, right_keys, right_children) = {
            let Node::Internal { keys, children } = &mut self.nodes[id as usize] else {
                unreachable!()
            };
            let mid = keys.len() / 2;
            let sep = keys[mid];
            let right_keys = keys.split_off(mid + 1);
            keys.pop(); // the separator moves up
            let right_children = children.split_off(mid + 1);
            (sep, right_keys, right_children)
        };
        let right = self.alloc(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        InsertResult::Split(sep, right)
    }

    /// Removes `key`, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = self.remove_rec(self.root, key);
        if removed.is_some() {
            // Collapse a root that became a single-child internal node.
            while let Node::Internal { keys, children } = &self.nodes[self.root as usize] {
                if keys.is_empty() {
                    debug_assert_eq!(children.len(), 1);
                    let only = children[0];
                    self.dealloc(self.root);
                    self.root = only;
                } else {
                    break;
                }
            }
        }
        removed
    }

    fn remove_rec(&mut self, id: u32, key: &K) -> Option<V> {
        let child_slot = match &self.nodes[id as usize] {
            Node::Internal { keys, .. } => Some(Self::child_slot(keys, key)),
            Node::Leaf { .. } => None,
            Node::Free => unreachable!(),
        };

        if let Some(slot) = child_slot {
            let child = match &self.nodes[id as usize] {
                Node::Internal { children, .. } => children[slot],
                _ => unreachable!(),
            };
            let removed = self.remove_rec(child, key)?;
            if self.node_underflows(child) {
                self.rebalance_child(id, slot);
            }
            return Some(removed);
        }

        let Node::Leaf { keys, values, .. } = &mut self.nodes[id as usize] else {
            unreachable!()
        };
        let slot = keys.binary_search(key).ok()?;
        keys.remove(slot);
        let v = values.remove(slot);
        self.len -= 1;
        Some(v)
    }

    fn node_underflows(&self, id: u32) -> bool {
        match &self.nodes[id as usize] {
            Node::Internal { keys, .. } | Node::Leaf { keys, .. } => keys.len() < MIN_KEYS,
            Node::Free => unreachable!(),
        }
    }

    fn node_can_lend(&self, id: u32) -> bool {
        match &self.nodes[id as usize] {
            Node::Internal { keys, .. } | Node::Leaf { keys, .. } => keys.len() > MIN_KEYS,
            Node::Free => unreachable!(),
        }
    }

    /// Restores the invariant for `children[slot]` of internal node `parent`,
    /// by borrowing from a sibling or merging with one.
    fn rebalance_child(&mut self, parent: u32, slot: usize) {
        let (left_sibling, right_sibling) = {
            let Node::Internal { children, .. } = &self.nodes[parent as usize] else {
                unreachable!()
            };
            (
                if slot > 0 {
                    Some(children[slot - 1])
                } else {
                    None
                },
                children.get(slot + 1).copied(),
            )
        };

        if let Some(left) = left_sibling {
            if self.node_can_lend(left) {
                self.borrow_from_left(parent, slot, left);
                return;
            }
        }
        if let Some(right) = right_sibling {
            if self.node_can_lend(right) {
                self.borrow_from_right(parent, slot, right);
                return;
            }
        }
        // Merge with a sibling; prefer merging into the left one.
        if left_sibling.is_some() {
            self.merge_children(parent, slot - 1);
        } else if right_sibling.is_some() {
            self.merge_children(parent, slot);
        }
        // A root with a single child is collapsed by `remove`.
    }

    fn borrow_from_left(&mut self, parent: u32, slot: usize, left: u32) {
        let child = match &self.nodes[parent as usize] {
            Node::Internal { children, .. } => children[slot],
            _ => unreachable!(),
        };
        let sep_idx = slot - 1;
        match (left, child) {
            _ if matches!(self.nodes[left as usize], Node::Leaf { .. }) => {
                // Move the last key/value of the left leaf to the front of
                // the child leaf; the new separator is the moved key.
                let (k, v) = {
                    let Node::Leaf { keys, values, .. } = &mut self.nodes[left as usize] else {
                        unreachable!()
                    };
                    (keys.pop().expect("left can lend"), values.pop().unwrap())
                };
                {
                    let Node::Leaf { keys, values, .. } = &mut self.nodes[child as usize] else {
                        unreachable!()
                    };
                    keys.insert(0, k);
                    values.insert(0, v);
                }
                let Node::Internal { keys, .. } = &mut self.nodes[parent as usize] else {
                    unreachable!()
                };
                keys[sep_idx] = k;
            }
            _ => {
                // Internal: rotate through the parent separator.
                let (k, c) = {
                    let Node::Internal { keys, children } = &mut self.nodes[left as usize] else {
                        unreachable!()
                    };
                    (keys.pop().expect("left can lend"), children.pop().unwrap())
                };
                let old_sep = {
                    let Node::Internal { keys, .. } = &mut self.nodes[parent as usize] else {
                        unreachable!()
                    };
                    std::mem::replace(&mut keys[sep_idx], k)
                };
                let Node::Internal { keys, children } = &mut self.nodes[child as usize] else {
                    unreachable!()
                };
                keys.insert(0, old_sep);
                children.insert(0, c);
            }
        }
    }

    fn borrow_from_right(&mut self, parent: u32, slot: usize, right: u32) {
        let child = match &self.nodes[parent as usize] {
            Node::Internal { children, .. } => children[slot],
            _ => unreachable!(),
        };
        let sep_idx = slot;
        if matches!(self.nodes[right as usize], Node::Leaf { .. }) {
            let (k, v, new_first) = {
                let Node::Leaf { keys, values, .. } = &mut self.nodes[right as usize] else {
                    unreachable!()
                };
                let k = keys.remove(0);
                let v = values.remove(0);
                (k, v, keys[0])
            };
            {
                let Node::Leaf { keys, values, .. } = &mut self.nodes[child as usize] else {
                    unreachable!()
                };
                keys.push(k);
                values.push(v);
            }
            let Node::Internal { keys, .. } = &mut self.nodes[parent as usize] else {
                unreachable!()
            };
            keys[sep_idx] = new_first;
        } else {
            let (k, c) = {
                let Node::Internal { keys, children } = &mut self.nodes[right as usize] else {
                    unreachable!()
                };
                (keys.remove(0), children.remove(0))
            };
            let old_sep = {
                let Node::Internal { keys, .. } = &mut self.nodes[parent as usize] else {
                    unreachable!()
                };
                std::mem::replace(&mut keys[sep_idx], k)
            };
            let Node::Internal { keys, children } = &mut self.nodes[child as usize] else {
                unreachable!()
            };
            keys.push(old_sep);
            children.push(c);
        }
    }

    /// Merges `children[slot + 1]` of `parent` into `children[slot]`.
    fn merge_children(&mut self, parent: u32, slot: usize) {
        let (left, right, sep) = {
            let Node::Internal { keys, children } = &mut self.nodes[parent as usize] else {
                unreachable!()
            };
            let left = children[slot];
            let right = children.remove(slot + 1);
            let sep = keys.remove(slot);
            (left, right, sep)
        };
        if matches!(self.nodes[right as usize], Node::Leaf { .. }) {
            let (mut rk, mut rv, rnext) = {
                let Node::Leaf {
                    keys, values, next, ..
                } = &mut self.nodes[right as usize]
                else {
                    unreachable!()
                };
                (std::mem::take(keys), std::mem::take(values), *next)
            };
            {
                let Node::Leaf {
                    keys, values, next, ..
                } = &mut self.nodes[left as usize]
                else {
                    unreachable!()
                };
                keys.append(&mut rk);
                values.append(&mut rv);
                *next = rnext;
            }
            if rnext != NIL {
                if let Node::Leaf { prev, .. } = &mut self.nodes[rnext as usize] {
                    *prev = left;
                }
            }
        } else {
            let (mut rk, mut rc) = {
                let Node::Internal { keys, children } = &mut self.nodes[right as usize] else {
                    unreachable!()
                };
                (std::mem::take(keys), std::mem::take(children))
            };
            let Node::Internal { keys, children } = &mut self.nodes[left as usize] else {
                unreachable!()
            };
            keys.push(sep);
            keys.append(&mut rk);
            children.append(&mut rc);
        }
        self.dealloc(right);
    }

    /// Finds the leaf and slot of the first key ≥ (`Included`) or >
    /// (`Excluded`) the bound; `Unbounded` yields the first key overall.
    fn seek_lower(&self, bound: Bound<&K>) -> (u32, usize) {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Internal { keys, children } => {
                    let slot = match bound {
                        Bound::Included(k) | Bound::Excluded(k) => Self::child_slot(keys, k),
                        Bound::Unbounded => 0,
                    };
                    id = children[slot];
                }
                Node::Leaf { keys, next, .. } => {
                    let slot = match bound {
                        Bound::Included(k) => keys.partition_point(|x| x < k),
                        Bound::Excluded(k) => keys.partition_point(|x| x <= k),
                        Bound::Unbounded => 0,
                    };
                    if slot == keys.len() {
                        // First matching key lives in the next leaf (or none).
                        return (*next, 0);
                    }
                    return (id, slot);
                }
                Node::Free => unreachable!(),
            }
        }
    }

    /// Finds the leaf and slot of the last key ≤ (`Included`) or <
    /// (`Excluded`) the bound; `Unbounded` yields the last key overall.
    fn seek_upper(&self, bound: Bound<&K>) -> (u32, usize) {
        let mut id = self.root;
        loop {
            match &self.nodes[id as usize] {
                Node::Internal { keys, children } => {
                    let slot = match bound {
                        Bound::Included(k) => Self::child_slot(keys, k),
                        Bound::Excluded(k) => keys.partition_point(|x| x < k),
                        Bound::Unbounded => children.len() - 1,
                    };
                    id = children[slot];
                }
                Node::Leaf { keys, prev, .. } => {
                    let count = match bound {
                        Bound::Included(k) => keys.partition_point(|x| x <= k),
                        Bound::Excluded(k) => keys.partition_point(|x| x < k),
                        Bound::Unbounded => keys.len(),
                    };
                    if count == 0 {
                        // Last matching key lives in the previous leaf.
                        let p = *prev;
                        if p == NIL {
                            return (NIL, 0);
                        }
                        let Node::Leaf { keys, .. } = &self.nodes[p as usize] else {
                            unreachable!()
                        };
                        return (p, keys.len() - 1);
                    }
                    return (id, count - 1);
                }
                Node::Free => unreachable!(),
            }
        }
    }

    /// Ascending iterator over `(key, &value)` in `[lower, upper]` bounds.
    pub fn range(&self, lower: Bound<K>, upper: Bound<K>) -> RangeIter<'_, K, V> {
        let (leaf, slot) = self.seek_lower(as_ref_bound(&lower));
        RangeIter {
            tree: self,
            leaf,
            slot,
            upper,
        }
    }

    /// Descending iterator over `(key, &value)` in `[lower, upper]` bounds.
    pub fn range_rev(&self, lower: Bound<K>, upper: Bound<K>) -> RangeRevIter<'_, K, V> {
        let (leaf, slot) = self.seek_upper(as_ref_bound(&upper));
        RangeRevIter {
            tree: self,
            leaf,
            slot,
            lower,
            done: leaf == NIL,
        }
    }

    /// Ascending iterator over all pairs.
    pub fn iter(&self) -> RangeIter<'_, K, V> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Checks structural invariants; used by tests. Returns the tree depth.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> usize {
        fn walk<K: Ord + Copy + Debug, V>(
            t: &BPlusTree<K, V>,
            id: u32,
            lo: Option<K>,
            hi: Option<K>,
            is_root: bool,
        ) -> usize {
            match &t.nodes[id as usize] {
                Node::Internal { keys, children } => {
                    assert_eq!(children.len(), keys.len() + 1, "child/key arity");
                    if !is_root {
                        assert!(keys.len() >= MIN_KEYS, "internal underflow: {}", keys.len());
                    } else {
                        assert!(!keys.is_empty(), "root internal must have a key");
                    }
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys sorted");
                    if let (Some(lo), Some(&first)) = (lo, keys.first()) {
                        assert!(lo <= first, "separator below lower bound");
                    }
                    if let (Some(hi), Some(&last)) = (hi, keys.last()) {
                        assert!(last < hi, "separator above upper bound");
                    }
                    let mut depth = None;
                    for (i, &c) in children.iter().enumerate() {
                        let clo = if i == 0 { lo } else { Some(keys[i - 1]) };
                        let chi = if i == keys.len() { hi } else { Some(keys[i]) };
                        let d = walk(t, c, clo, chi, false);
                        match depth {
                            None => depth = Some(d),
                            Some(prev) => assert_eq!(prev, d, "uneven leaf depth"),
                        }
                    }
                    depth.unwrap() + 1
                }
                Node::Leaf { keys, values, .. } => {
                    assert_eq!(keys.len(), values.len());
                    if !is_root {
                        assert!(keys.len() >= MIN_KEYS, "leaf underflow: {}", keys.len());
                    }
                    assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaf keys sorted");
                    if let (Some(lo), Some(&first)) = (lo, keys.first()) {
                        assert!(lo <= first, "leaf key below lower bound");
                    }
                    if let (Some(hi), Some(&last)) = (hi, keys.last()) {
                        assert!(last < hi, "leaf key above upper bound");
                    }
                    0
                }
                Node::Free => panic!("reachable free node"),
            }
        }
        walk(self, self.root, None, None, true)
    }
}

fn as_ref_bound<K>(b: &Bound<K>) -> Bound<&K> {
    match b {
        Bound::Included(k) => Bound::Included(k),
        Bound::Excluded(k) => Bound::Excluded(k),
        Bound::Unbounded => Bound::Unbounded,
    }
}

enum InsertResult<K, V> {
    Done(Option<V>),
    Split(K, u32),
}

/// Ascending range iterator.
pub struct RangeIter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: u32,
    slot: usize,
    upper: Bound<K>,
}

impl<'a, K: Ord + Copy + Debug, V> Iterator for RangeIter<'a, K, V> {
    type Item = (K, &'a V);

    fn next(&mut self) -> Option<(K, &'a V)> {
        loop {
            if self.leaf == NIL {
                return None;
            }
            let Node::Leaf {
                keys, values, next, ..
            } = &self.tree.nodes[self.leaf as usize]
            else {
                unreachable!()
            };
            if self.slot >= keys.len() {
                self.leaf = *next;
                self.slot = 0;
                continue;
            }
            let k = keys[self.slot];
            let in_range = match &self.upper {
                Bound::Included(u) => k <= *u,
                Bound::Excluded(u) => k < *u,
                Bound::Unbounded => true,
            };
            if !in_range {
                self.leaf = NIL;
                return None;
            }
            let v = &values[self.slot];
            self.slot += 1;
            return Some((k, v));
        }
    }
}

/// Descending range iterator.
pub struct RangeRevIter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    leaf: u32,
    slot: usize,
    lower: Bound<K>,
    done: bool,
}

impl<'a, K: Ord + Copy + Debug, V> Iterator for RangeRevIter<'a, K, V> {
    type Item = (K, &'a V);

    fn next(&mut self) -> Option<(K, &'a V)> {
        if self.done {
            return None;
        }
        let Node::Leaf {
            keys, values, prev, ..
        } = &self.tree.nodes[self.leaf as usize]
        else {
            unreachable!()
        };
        let k = keys[self.slot];
        let in_range = match &self.lower {
            Bound::Included(l) => k >= *l,
            Bound::Excluded(l) => k > *l,
            Bound::Unbounded => true,
        };
        if !in_range {
            self.done = true;
            return None;
        }
        let v = &values[self.slot];
        // Step backwards.
        if self.slot > 0 {
            self.slot -= 1;
        } else {
            let p = *prev;
            if p == NIL {
                self.done = true;
            } else {
                let Node::Leaf { keys, .. } = &self.tree.nodes[p as usize] else {
                    unreachable!()
                };
                self.leaf = p;
                self.slot = keys.len() - 1;
            }
        }
        Some((k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::ops::Bound::{Excluded, Included, Unbounded};

    #[test]
    fn empty_tree() {
        let t: BPlusTree<i64, u32> = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(&1), None);
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.range_rev(Unbounded, Unbounded).count(), 0);
    }

    #[test]
    fn insert_get_overwrite() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(5, "five"), None);
        assert_eq!(t.insert(5, "FIVE"), Some("five"));
        assert_eq!(t.get(&5), Some(&"FIVE"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_mut_updates() {
        let mut t = BPlusTree::new();
        t.insert(1, 10);
        *t.get_mut(&1).unwrap() += 5;
        assert_eq!(t.get(&1), Some(&15));
        assert_eq!(t.get_mut(&2), None);
    }

    #[test]
    fn many_inserts_stay_sorted_and_balanced() {
        let mut t = BPlusTree::new();
        // Insert in a scrambled order.
        for i in 0..1000i64 {
            let k = (i * 7919) % 1000;
            t.insert(k, k * 2);
        }
        assert_eq!(t.len(), 1000);
        t.check_invariants();
        let collected: Vec<i64> = t.iter().map(|(k, _)| k).collect();
        let sorted: Vec<i64> = (0..1000).collect();
        assert_eq!(collected, sorted);
    }

    #[test]
    fn range_scans_match_btreemap() {
        let mut t = BPlusTree::new();
        let mut oracle = BTreeMap::new();
        for i in (0..500i64).step_by(3) {
            t.insert(i, i);
            oracle.insert(i, i);
        }
        for (lo, hi) in [(10i64, 100i64), (0, 499), (7, 8), (100, 100), (-5, 1000)] {
            let got: Vec<i64> = t
                .range(Included(lo), Excluded(hi))
                .map(|(k, _)| k)
                .collect();
            let want: Vec<i64> = oracle.range(lo..hi).map(|(&k, _)| k).collect();
            assert_eq!(got, want, "range [{lo}, {hi})");

            let got_rev: Vec<i64> = t
                .range_rev(Excluded(lo), Included(hi))
                .map(|(k, _)| k)
                .collect();
            let want_rev: Vec<i64> = oracle
                .range((Excluded(lo), Included(hi)))
                .rev()
                .map(|(&k, _)| k)
                .collect();
            assert_eq!(got_rev, want_rev, "rev range ({lo}, {hi}]");
        }
    }

    #[test]
    fn remove_every_other_then_all() {
        let mut t = BPlusTree::new();
        for i in 0..300i64 {
            t.insert(i, i);
        }
        for i in (0..300i64).step_by(2) {
            assert_eq!(t.remove(&i), Some(i));
            assert_eq!(t.remove(&i), None);
        }
        t.check_invariants();
        assert_eq!(t.len(), 150);
        let keys: Vec<i64> = t.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, (0..300i64).filter(|k| k % 2 == 1).collect::<Vec<_>>());
        for i in (1..300i64).step_by(2) {
            assert_eq!(t.remove(&i), Some(i));
        }
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn remove_descending_exercises_left_merges() {
        let mut t = BPlusTree::new();
        for i in 0..200i64 {
            t.insert(i, ());
        }
        for i in (0..200i64).rev() {
            assert_eq!(t.remove(&i), Some(()));
            t.check_invariants();
        }
        assert!(t.is_empty());
    }

    #[test]
    fn remove_ascending_exercises_right_borrows() {
        let mut t = BPlusTree::new();
        for i in 0..200i64 {
            t.insert(i, ());
        }
        for i in 0..200i64 {
            assert_eq!(t.remove(&i), Some(()));
            t.check_invariants();
        }
        assert!(t.is_empty());
    }

    #[test]
    fn leaf_links_survive_merges() {
        let mut t = BPlusTree::new();
        for i in 0..128i64 {
            t.insert(i, ());
        }
        // Remove a middle run to force merges, then walk both directions.
        for i in 40..90i64 {
            t.remove(&i);
        }
        t.check_invariants();
        let fwd: Vec<i64> = t.iter().map(|(k, _)| k).collect();
        let mut expect: Vec<i64> = (0..40).chain(90..128).collect();
        assert_eq!(fwd, expect);
        let rev: Vec<i64> = t.range_rev(Unbounded, Unbounded).map(|(k, _)| k).collect();
        expect.reverse();
        assert_eq!(rev, expect);
    }

    #[test]
    fn seek_bounds_on_leaf_edges() {
        let mut t = BPlusTree::new();
        for i in (0..100i64).step_by(10) {
            t.insert(i, ());
        }
        // Bound exactly between leaves / on keys.
        let got: Vec<i64> = t.range(Excluded(30), Unbounded).map(|(k, _)| k).collect();
        assert_eq!(got, vec![40, 50, 60, 70, 80, 90]);
        let got: Vec<i64> = t.range(Included(31), Unbounded).map(|(k, _)| k).collect();
        assert_eq!(got, vec![40, 50, 60, 70, 80, 90]);
        let got: Vec<i64> = t
            .range_rev(Unbounded, Excluded(30))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(got, vec![20, 10, 0]);
        let got: Vec<i64> = t
            .range_rev(Unbounded, Included(30))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(got, vec![30, 20, 10, 0]);
        // Bound past either end.
        assert_eq!(t.range(Included(1000), Unbounded).count(), 0);
        assert_eq!(t.range_rev(Unbounded, Excluded(0)).count(), 0);
    }
}
