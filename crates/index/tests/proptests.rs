//! Property tests for the indexing substrate: the B+-tree against a
//! `BTreeMap` oracle, and the phase-1 evaluator against brute-force
//! predicate evaluation.

use proptest::prelude::*;
use pubsub_index::{kernels, BPlusTree, Phase1Batch, PredicateIndex};
use pubsub_types::{AttrId, Event, Operator, Predicate, Symbol, Value};
use std::collections::BTreeMap;
use std::ops::Bound;

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(i64, u32),
    Remove(i64),
}

fn tree_ops() -> impl Strategy<Value = Vec<TreeOp>> {
    prop::collection::vec(
        prop_oneof![
            (-200i64..200, any::<u32>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
            (-200i64..200).prop_map(TreeOp::Remove),
        ],
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bptree_matches_btreemap(ops in tree_ops(), lo in -250i64..250, hi in -250i64..250) {
        let mut tree = BPlusTree::new();
        let mut oracle = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), oracle.insert(k, v));
                }
                TreeOp::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), oracle.remove(&k));
                }
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), oracle.len());

        // Full iteration agrees.
        let got: Vec<(i64, u32)> = tree.iter().map(|(k, v)| (k, *v)).collect();
        let want: Vec<(i64, u32)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);

        // Point lookups agree.
        for k in [-250i64, -1, 0, 1, lo, hi] {
            prop_assert_eq!(tree.get(&k), oracle.get(&k));
        }

        // Range scans agree in both directions, with every bound shape.
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let fwd: Vec<i64> = tree
            .range(Bound::Included(lo), Bound::Excluded(hi))
            .map(|(k, _)| k)
            .collect();
        let fwd_want: Vec<i64> = oracle.range(lo..hi).map(|(&k, _)| k).collect();
        prop_assert_eq!(fwd, fwd_want);

        let rev: Vec<i64> = tree
            .range_rev(Bound::Excluded(lo), Bound::Included(hi))
            .map(|(k, _)| k)
            .collect();
        let rev_want: Vec<i64> = oracle
            .range((Bound::Excluded(lo), Bound::Included(hi)))
            .rev()
            .map(|(&k, _)| k)
            .collect();
        prop_assert_eq!(rev, rev_want);
    }
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..30).prop_map(Value::Int),
        (0u32..6).prop_map(|s| Value::Str(Symbol(s))),
    ]
}

fn arb_operator() -> impl Strategy<Value = Operator> {
    prop::sample::select(Operator::ALL.to_vec())
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (0u32..5, arb_operator(), arb_value()).prop_map(|(a, op, v)| Predicate::new(AttrId(a), op, v))
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop::collection::btree_map(0u32..5, arb_value(), 0..5).prop_map(|m| {
        Event::from_pairs(m.into_iter().map(|(a, v)| (AttrId(a), v)).collect()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn evaluator_agrees_with_brute_force(
        preds in prop::collection::vec(arb_predicate(), 1..60),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..10),
        events in prop::collection::vec(arb_event(), 1..8),
    ) {
        let mut idx = PredicateIndex::new();
        let ids: Vec<_> = preds.iter().map(|&p| idx.intern(p)).collect();

        // Release a few references; a predicate only disappears when every
        // duplicate interning of it has been released.
        let mut released = vec![0usize; preds.len()];
        for r in removals {
            let i = r.index(preds.len());
            if released[i] == 0 {
                idx.release(ids[i]);
                released[i] = 1;
            }
        }
        // A predicate is live iff at least one of its interning references
        // survives.
        let mut refs: std::collections::HashMap<Predicate, i64> = Default::default();
        for (i, p) in preds.iter().enumerate() {
            *refs.entry(*p).or_insert(0) += 1 - released[i] as i64;
        }

        for event in &events {
            let mut got: Vec<Predicate> = idx
                .eval(event)
                .iter()
                .map(|&id| *idx.predicate(id))
                .collect();
            let mut want: Vec<Predicate> = refs
                .iter()
                .filter(|(p, &c)| c > 0 && p.matches_event(event))
                .map(|(p, _)| *p)
                .collect();
            let key = |p: &Predicate| format!("{p:?}");
            got.sort_by_key(key);
            got.dedup();
            want.sort_by_key(key);
            prop_assert_eq!(got, want);
        }
    }
}

/// One step of the interleaved snapshot-churn workload.
#[derive(Debug, Clone)]
enum ChurnOp {
    /// Intern a predicate (duplicates bump the refcount).
    Intern(Predicate),
    /// Release the i-th outstanding interning reference (modulo count).
    Release(prop::sample::Index),
    /// Evaluate an event on both phase-1 paths and compare.
    Match(Event),
    /// Force a merge-rebuild of every attribute snapshot.
    Flush,
}

fn churn_ops() -> impl Strategy<Value = Vec<ChurnOp>> {
    prop::collection::vec(
        prop_oneof![
            5 => arb_predicate().prop_map(ChurnOp::Intern),
            3 => any::<prop::sample::Index>().prop_map(ChurnOp::Release),
            2 => arb_event().prop_map(ChurnOp::Match),
            1 => Just(ChurnOp::Flush),
        ],
        0..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The snapshot evaluator and the direct B+-tree evaluation must agree
    /// after every prefix of a random interleaving of interns, releases,
    /// matches, and forced rebuilds — covering delta-overlay-resident,
    /// tombstoned, and post-rebuild snapshot states.
    #[test]
    fn snapshot_agrees_with_btree_under_churn(ops in churn_ops(), final_events in prop::collection::vec(arb_event(), 1..4)) {
        let mut idx = PredicateIndex::new();
        // Outstanding interning references, one entry per un-released intern.
        let mut outstanding: Vec<pubsub_index::PredicateId> = Vec::new();
        let mut matches_checked = 0usize;
        for op in ops {
            match op {
                ChurnOp::Intern(p) => outstanding.push(idx.intern(p)),
                ChurnOp::Release(i) => {
                    if !outstanding.is_empty() {
                        let id = outstanding.swap_remove(i.index(outstanding.len()));
                        idx.release(id);
                    }
                }
                ChurnOp::Match(event) => {
                    let mut got = idx.eval(&event);
                    let mut want = idx.eval_btree(&event);
                    got.sort();
                    want.sort();
                    prop_assert_eq!(got, want, "event {:?}", event);
                    matches_checked += 1;
                }
                ChurnOp::Flush => idx.rebuild_snapshots(),
            }
        }
        // Always end with a few comparisons so every generated sequence
        // checks something, whatever the op mix.
        for event in &final_events {
            let mut got = idx.eval(event);
            let mut want = idx.eval_btree(event);
            got.sort();
            want.sort();
            prop_assert_eq!(got, want, "final event {:?}", event);
            matches_checked += 1;
        }
        prop_assert!(matches_checked > 0);
    }
}

/// Flushes `pending` through the batched evaluator and compares every event
/// against both the per-event snapshot path and the B+-tree reference.
fn check_batch(
    idx: &PredicateIndex,
    batch: &mut Phase1Batch,
    pending: &mut Vec<Event>,
) -> Result<usize, TestCaseError> {
    if pending.is_empty() {
        return Ok(0);
    }
    idx.eval_batch_into(pending, batch);
    for (i, event) in pending.iter().enumerate() {
        idx.materialize(batch, i);
        let mut got: Vec<_> = batch.satisfied(i).to_vec();
        let mut scalar = idx.eval(event);
        let mut btree = idx.eval_btree(event);
        got.sort();
        scalar.sort();
        btree.sort();
        prop_assert_eq!(&got, &scalar, "batched vs scalar, event {:?}", event);
        prop_assert_eq!(&got, &btree, "batched vs btree, event {:?}", event);
        for &id in &got {
            prop_assert!(batch.bits(i).get(id.0), "bit {:?} unset", id);
        }
        prop_assert_eq!(batch.bits(i).count_ones(), got.len(), "spurious bits");
        batch.clear_event(i);
    }
    let n = pending.len();
    pending.clear();
    Ok(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The batched evaluator must agree with both the per-event snapshot
    /// path and the B+-tree reference over interleaved intern/release/match
    /// churn, at several batch sizes (events are buffered and flushed as a
    /// batch before every mutation, so batches always see a consistent
    /// index — exactly the broker's usage pattern).
    #[test]
    fn batched_agrees_with_scalar_and_btree_under_churn(
        ops in churn_ops(),
        batch_size in prop::sample::select(vec![1usize, 7, 64]),
        final_events in prop::collection::vec(arb_event(), 1..4),
    ) {
        let mut idx = PredicateIndex::new();
        let mut outstanding: Vec<pubsub_index::PredicateId> = Vec::new();
        let mut batch = Phase1Batch::new();
        let mut pending: Vec<Event> = Vec::new();
        let mut matches_checked = 0usize;
        for op in ops {
            match op {
                ChurnOp::Intern(p) => {
                    matches_checked += check_batch(&idx, &mut batch, &mut pending)?;
                    outstanding.push(idx.intern(p));
                }
                ChurnOp::Release(i) => {
                    matches_checked += check_batch(&idx, &mut batch, &mut pending)?;
                    if !outstanding.is_empty() {
                        let id = outstanding.swap_remove(i.index(outstanding.len()));
                        idx.release(id);
                    }
                }
                ChurnOp::Match(event) => {
                    pending.push(event);
                    if pending.len() >= batch_size {
                        matches_checked += check_batch(&idx, &mut batch, &mut pending)?;
                    }
                }
                ChurnOp::Flush => {
                    matches_checked += check_batch(&idx, &mut batch, &mut pending)?;
                    idx.rebuild_snapshots();
                }
            }
        }
        pending.extend(final_events.iter().cloned());
        matches_checked += check_batch(&idx, &mut batch, &mut pending)?;
        prop_assert!(matches_checked > 0);
        prop_assert!(
            batch.scratch_regrowths() <= 64,
            "scratch regrew {} times",
            batch.scratch_regrowths()
        );
    }

    /// Edge case: an index holding only `≠` predicates (no ordered
    /// breakpoints at all — the snapshot arrays stay empty) must still agree
    /// across all three paths, including for single-event batches.
    #[test]
    fn batched_all_ne_index_agrees(
        constants in prop::collection::vec(arb_value(), 1..12),
        events in prop::collection::vec(arb_event(), 1..6),
    ) {
        let mut idx = PredicateIndex::new();
        for (i, v) in constants.iter().enumerate() {
            idx.intern(Predicate::new(AttrId((i % 3) as u32), Operator::Ne, *v));
        }
        let mut batch = Phase1Batch::new();
        let mut pending = events.clone();
        check_batch(&idx, &mut batch, &mut pending)?;
        // And one event at a time (batch size 1).
        for e in &events {
            let mut single = vec![e.clone()];
            check_batch(&idx, &mut batch, &mut single)?;
        }
    }

    /// Edge case: exactly one breakpoint per direction — the smallest
    /// non-empty snapshot the gallop and kernels can see.
    #[test]
    fn batched_single_breakpoint_agrees(
        op in prop::sample::select(vec![Operator::Lt, Operator::Le, Operator::Ge, Operator::Gt]),
        c in 0i64..30,
        events in prop::collection::vec(arb_event(), 1..6),
    ) {
        let mut idx = PredicateIndex::new();
        idx.intern(Predicate::new(AttrId(0), op, c));
        let mut batch = Phase1Batch::new();
        let mut pending = events;
        check_batch(&idx, &mut batch, &mut pending)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every lower-bound kernel must agree with `slice::partition_point` on
    /// arbitrary sorted inputs and targets, including targets outside the
    /// array range and exact-hit duplicates. With `--features simd` this
    /// pins the SSE2 and (where the CPU has it) AVX2 kernels bit-identically
    /// to the scalar reference.
    #[test]
    fn lower_bound_kernels_agree(
        a in prop::collection::vec(any::<u64>(), 0..200),
        targets in prop::collection::vec(any::<u64>(), 1..8),
        pick in any::<prop::sample::Index>(),
    ) {
        let mut a = a;
        a.sort_unstable();
        // Probe arbitrary targets plus values actually present (duplicates
        // must land on the first occurrence) and their neighbours.
        let mut probes = targets;
        if !a.is_empty() {
            let x = a[pick.index(a.len())];
            probes.extend([x, x.wrapping_add(1), x.wrapping_sub(1)]);
        }
        probes.extend([0, 1 << 63, u64::MAX]);
        for t in probes {
            let want = kernels::lower_bound_scalar(&a, t);
            prop_assert_eq!(kernels::lower_bound_portable(&a, t), want, "portable, t={}", t);
            prop_assert_eq!(kernels::lower_bound_u64(&a, t), want, "dispatch, t={}", t);
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            {
                prop_assert_eq!(kernels::lower_bound_sse2(&a, t), want, "sse2, t={}", t);
                if let Some(got) = kernels::lower_bound_avx2(&a, t) {
                    prop_assert_eq!(got, want, "avx2, t={}", t);
                }
            }
        }
    }
}
