//! `pubsub` — an interactive command-line broker.
//!
//! The paper's prototype "runs as a process … waiting for subscriptions and
//! events to process"; this binary is that process in miniature, driven by
//! stdin lines (interactively or piped):
//!
//! ```text
//! sub movie = 'groundhog day' AND price <= 10
//! sub (from = 'NYC' AND price < 400) OR (from = 'EWR' AND price < 350)
//! pub {movie: 'groundhog day', price: 8}
//! unsub d0
//! tick 5
//! stats
//! chaos arm core.sharded.worker.match panic nth=1
//! help
//! quit
//! ```
//!
//! Start with `cargo run -p pubsub-cli --bin pubsub -- [engine] [--shards N]
//! [--backpressure block|shed|error-fast]` where `engine` is one of
//! `counting`, `propagation`, `propagation-wp`, `static`, `dynamic`
//! (default). `--shards N` partitions the subscription set across `N`
//! supervised parallel shard engines; `stats` then also reports per-shard
//! subscription counts and robustness counters (worker panics, shard
//! rebuilds, quarantined events). `--backpressure` selects the sharded
//! engine's overload policy. The `chaos` command drives the deterministic
//! fault-injection registry when the binary is built with
//! `--features faults`.

use pubsub_broker::{Broker, DnfId, DnfRegistry, DnfSubscription, Validity};
use pubsub_core::{Backpressure, EngineKind, ShardedConfig};
use pubsub_lang::{parse_event, parse_subscription};
use pubsub_types::faults::{self, FaultAction, Schedule};
use pubsub_types::metrics::MetricsSnapshot;
use std::io::{BufRead, Write};

struct Cli {
    broker: Broker,
    dnf: DnfRegistry,
}

impl Cli {
    /// `shards == 0` runs the engine unsharded; `shards >= 1` runs it behind
    /// a supervised sharded worker pool with the default overload policy.
    #[cfg(test)]
    fn with_shards(kind: EngineKind, shards: usize) -> Self {
        Self::with_options(kind, shards, Backpressure::Block)
    }

    /// Like [`Cli::with_shards`] with an explicit overload policy for the
    /// sharded engine (ignored when `shards == 0`).
    fn with_options(kind: EngineKind, shards: usize, backpressure: Backpressure) -> Self {
        let broker = if shards == 0 {
            Broker::new(kind)
        } else {
            let config = ShardedConfig {
                backpressure,
                ..ShardedConfig::default()
            };
            Broker::new_sharded_with(kind, shards, config)
        };
        Self {
            broker,
            dnf: DnfRegistry::new(),
        }
    }

    /// Executes one command line; returns the response text, or `None` to
    /// quit.
    fn execute(&mut self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Some(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let out = match cmd {
            "sub" | "subscribe" => self.cmd_subscribe(rest),
            "pub" | "publish" => self.cmd_publish(rest),
            "unsub" | "unsubscribe" => self.cmd_unsubscribe(rest),
            "tick" => self.cmd_tick(rest),
            "stats" => self.cmd_stats(rest),
            "chaos" => self.cmd_chaos(rest),
            "help" => Ok(HELP.to_string()),
            "quit" | "exit" => return None,
            other => Err(format!("unknown command `{other}` (try `help`)")),
        };
        Some(out.unwrap_or_else(|e| format!("error: {e}")))
    }

    fn vocab_mut(&mut self) -> &mut pubsub_types::Vocabulary {
        // The broker owns the vocabulary; the parser needs mutable access.
        // Broker exposes interning via attr()/string(); for parsing whole
        // expressions we reach the vocabulary through a dedicated handle.
        self.broker.vocabulary_mut()
    }

    fn cmd_subscribe(&mut self, expr: &str) -> Result<String, String> {
        let parsed = parse_subscription(expr, self.vocab_mut()).map_err(|e| e.render(expr))?;
        if parsed.is_conjunctive() {
            let id = self
                .broker
                .subscribe(parsed.into_conjunction(), Validity::forever());
            Ok(format!("subscribed {id}"))
        } else {
            let dnf = DnfSubscription::new(parsed.disjuncts).expect("non-empty");
            let n = dnf.disjuncts().len();
            let id = self
                .dnf
                .subscribe(&mut self.broker, dnf, Validity::forever());
            Ok(format!("subscribed {id} ({n} disjuncts)"))
        }
    }

    fn cmd_publish(&mut self, expr: &str) -> Result<String, String> {
        let event = parse_event(expr, self.vocab_mut()).map_err(|e| e.render(expr))?;
        let (dnf_hits, plain) = self.dnf.publish(&mut self.broker, &event);
        let mut names: Vec<String> = plain.iter().map(|s| s.to_string()).collect();
        names.extend(dnf_hits.iter().map(|d| d.to_string()));
        if names.is_empty() {
            Ok("matched: (none)".into())
        } else {
            Ok(format!("matched: {}", names.join(", ")))
        }
    }

    fn cmd_unsubscribe(&mut self, id: &str) -> Result<String, String> {
        let ok = if let Some(num) = id.strip_prefix('d') {
            let n: u64 = num.parse().map_err(|_| format!("bad id `{id}`"))?;
            self.dnf.unsubscribe(&mut self.broker, DnfId(n))
        } else {
            let n: u32 = id
                .strip_prefix('s')
                .unwrap_or(id)
                .parse()
                .map_err(|_| format!("bad id `{id}`"))?;
            self.broker.unsubscribe(pubsub_types::SubscriptionId(n))
        };
        if ok {
            Ok(format!("unsubscribed {id}"))
        } else {
            Err(format!("no subscription `{id}`"))
        }
    }

    fn cmd_tick(&mut self, arg: &str) -> Result<String, String> {
        let n: u64 = if arg.is_empty() {
            1
        } else {
            arg.parse().map_err(|_| format!("bad tick count `{arg}`"))?
        };
        let mut subs = 0;
        let mut events = 0;
        for _ in 0..n {
            let (s, e) = self.broker.tick();
            subs += s;
            events += e;
        }
        Ok(format!(
            "now {}; expired {subs} subscription(s), {events} event(s)",
            self.broker.now()
        ))
    }

    /// `chaos [status|clear|arm <point> <action> <schedule> [lane=<n>]]`:
    /// drives the deterministic fault-injection registry. Actions are
    /// `panic`, `corrupt`, `delay=<ms>`; schedules are `nth=<n>`,
    /// `every=<n>`, `seed=<seed>,<ppm>`. Requires `--features faults` to
    /// arm; `status`/`clear` always work.
    fn cmd_chaos(&mut self, rest: &str) -> Result<String, String> {
        let mut toks = rest.split_whitespace();
        match toks.next() {
            None | Some("status") => Ok(format!(
                "fault injection {}; {} rule(s) armed",
                if faults::enabled() {
                    "enabled"
                } else {
                    "unavailable (build with --features faults)"
                },
                faults::armed()
            )),
            Some("clear") => {
                faults::clear();
                Ok("cleared all fault rules".into())
            }
            Some("arm") => {
                if !faults::enabled() {
                    return Err(
                        "fault injection unavailable; rebuild with --features faults".into(),
                    );
                }
                const USAGE: &str = "usage: chaos arm <point> <action> <schedule> [lane=<n>]";
                let point = toks.next().ok_or(USAGE)?;
                let action = parse_fault_action(toks.next().ok_or(USAGE)?)?;
                let schedule = parse_fault_schedule(toks.next().ok_or(USAGE)?)?;
                let mut lane = None;
                for tok in toks {
                    let n = tok
                        .strip_prefix("lane=")
                        .ok_or_else(|| format!("unexpected token `{tok}` ({USAGE})"))?;
                    lane = Some(n.parse::<usize>().map_err(|_| format!("bad lane `{n}`"))?);
                }
                faults::arm(point, lane, action, schedule);
                Ok(format!(
                    "armed {action:?} on {point} ({} rule(s) armed)",
                    faults::armed()
                ))
            }
            Some(other) => Err(format!(
                "unknown chaos subcommand `{other}` (known: status clear arm)"
            )),
        }
    }

    /// `stats [--json] [--metrics]`: engine statistics, optionally as a
    /// single-line JSON document and/or with the global `MetricsSnapshot`.
    fn cmd_stats(&mut self, rest: &str) -> Result<String, String> {
        let mut json = false;
        let mut metrics = false;
        for tok in rest.split_whitespace() {
            match tok {
                "--json" => json = true,
                "--metrics" => metrics = true,
                other => {
                    return Err(format!(
                        "unknown stats flag `{other}` (known: --json --metrics)"
                    ))
                }
            }
        }
        let s = self.broker.engine_stats();
        if json {
            // Keys in ascending order, pubsub-workload::json conventions.
            let mut out = format!(
                "{{\"checks\":{},\"engine\":{:?},\"events\":{},\"matches\":{}",
                s.subscriptions_checked,
                self.broker.engine_name(),
                s.events,
                s.matches,
            );
            if metrics {
                out.push_str(&format!(
                    ",\"metrics\":{}",
                    MetricsSnapshot::capture().to_json()
                ));
            }
            out.push_str(&format!(
                ",\"phase1_nanos\":{},\"phase2_nanos\":{}",
                s.phase1_nanos, s.phase2_nanos
            ));
            if let Some(h) = self.broker.shard_health() {
                out.push_str(&format!(
                    ",\"robustness\":{{\"degraded_matches\":{},\"quarantined_events\":{},\
                     \"replayed_subscriptions\":{},\"sealed_shards\":{},\"shard_rebuilds\":{},\
                     \"shed_requests\":{},\"spawn_fallbacks\":{},\"worker_panics\":{}}}",
                    h.degraded_matches,
                    h.quarantined_events,
                    h.replayed_subscriptions,
                    h.sealed_shards,
                    h.shard_rebuilds,
                    h.shed_requests,
                    h.spawn_fallbacks,
                    h.worker_panics,
                ));
            }
            if let Some(counts) = self.broker.shard_subscription_counts() {
                let list: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
                out.push_str(&format!(",\"shards\":[{}]", list.join(",")));
            }
            out.push_str(&format!(
                ",\"stored_events\":{},\"subscriptions\":{}}}",
                self.broker.stored_event_count(),
                self.broker.subscription_count(),
            ));
            return Ok(out);
        }
        let per_event_us = |nanos: u64| {
            if s.events == 0 {
                0.0
            } else {
                nanos as f64 / s.events as f64 / 1000.0
            }
        };
        let mut out = format!(
            "engine {}  subscriptions {}  stored-events {}  events {}  checks/event {:.1}  matches {}\n\
             phase1/event {:.1}µs  phase2/event {:.1}µs",
            self.broker.engine_name(),
            self.broker.subscription_count(),
            self.broker.stored_event_count(),
            s.events,
            s.checks_per_event(),
            s.matches,
            per_event_us(s.phase1_nanos),
            per_event_us(s.phase2_nanos),
        );
        if let Some(counts) = self.broker.shard_subscription_counts() {
            out.push_str(&format!(
                "\nshards {}  per-shard subscriptions {counts:?}",
                counts.len()
            ));
        }
        if let Some(h) = self.broker.shard_health() {
            out.push_str(&format!(
                "\nrobustness: panics {}  rebuilds {}  replayed {}  quarantined {}  \
                 degraded {}  shed {}  spawn-fallbacks {}  sealed {}",
                h.worker_panics,
                h.shard_rebuilds,
                h.replayed_subscriptions,
                h.quarantined_events,
                h.degraded_matches,
                h.shed_requests,
                h.spawn_fallbacks,
                h.sealed_shards,
            ));
            if !h.last_quarantined.is_empty() {
                out.push_str(&format!(
                    "  (holding last {} quarantined event(s))",
                    h.last_quarantined.len()
                ));
            }
        }
        if metrics {
            let snap = MetricsSnapshot::capture();
            if snap.is_empty() {
                out.push_str("\nmetrics: (empty; build with `--features metrics`)");
            } else {
                out.push_str("\nmetrics:");
                for c in &snap.counters {
                    out.push_str(&format!("\n  {} = {}", c.name, c.value));
                }
                for h in &snap.histograms {
                    out.push_str(&format!("\n  {} count {} sum {}", h.name, h.count, h.sum));
                }
            }
        }
        Ok(out)
    }
}

fn parse_fault_action(s: &str) -> Result<FaultAction, String> {
    if let Some(ms) = s.strip_prefix("delay=") {
        let ms: u64 = ms.parse().map_err(|_| format!("bad delay `{ms}`"))?;
        return Ok(FaultAction::Delay(ms));
    }
    match s {
        "panic" => Ok(FaultAction::Panic),
        "corrupt" => Ok(FaultAction::Corrupt),
        other => Err(format!(
            "unknown action `{other}` (known: panic corrupt delay=<ms>)"
        )),
    }
}

fn parse_fault_schedule(s: &str) -> Result<Schedule, String> {
    if let Some(n) = s.strip_prefix("nth=") {
        let n: u64 = n.parse().map_err(|_| format!("bad count `{n}`"))?;
        return Ok(Schedule::Nth(n));
    }
    if let Some(n) = s.strip_prefix("every=") {
        let n: u64 = n.parse().map_err(|_| format!("bad count `{n}`"))?;
        return Ok(Schedule::EveryNth(n));
    }
    if let Some(rest) = s.strip_prefix("seed=") {
        let (seed, ppm) = rest
            .split_once(',')
            .ok_or_else(|| format!("bad seed schedule `{rest}` (want seed=<seed>,<ppm>)"))?;
        let seed: u64 = seed.parse().map_err(|_| format!("bad seed `{seed}`"))?;
        let prob_ppm: u32 = ppm.parse().map_err(|_| format!("bad ppm `{ppm}`"))?;
        return Ok(Schedule::Seeded { seed, prob_ppm });
    }
    Err(format!(
        "unknown schedule `{s}` (known: nth=<n> every=<n> seed=<seed>,<ppm>)"
    ))
}

const HELP: &str = "\
commands:
  sub <expr>     register a subscription, e.g.  sub price <= 10 AND movie = 'up'
                 (use OR for disjunctions)
  pub <event>    publish an event, e.g.        pub {price: 8, movie: 'up'}
  unsub <id>     remove a subscription by the id printed at sub time
  tick [n]       advance the logical clock (expires validities)
  stats          engine statistics; `--json` for machine-readable output,
                 `--metrics` to include the global metrics snapshot
                 (requires building with `--features metrics`); sharded
                 engines also report robustness counters (panics, rebuilds,
                 quarantined events)
  chaos          fault injection (requires `--features faults`):
                 `chaos status`, `chaos clear`,
                 `chaos arm <point> <action> <schedule> [lane=<n>]` with
                 action panic|corrupt|delay=<ms>, schedule
                 nth=<n>|every=<n>|seed=<seed>,<ppm>; points include
                 core.sharded.worker.op, core.sharded.worker.match,
                 core.sharded.spawn (lane = shard index)
  help           this text
  quit           exit";

fn main() {
    let mut kind = EngineKind::Dynamic;
    let mut shards = 0usize;
    let mut backpressure = Backpressure::Block;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                shards = args
                    .next()
                    .expect("--shards needs a value")
                    .parse()
                    .expect("integer shard count");
            }
            "--backpressure" => {
                backpressure = args
                    .next()
                    .expect("--backpressure needs a value")
                    .parse()
                    .unwrap_or_else(|e| panic!("{e}"));
            }
            other => kind = other.parse().unwrap_or_else(|e| panic!("{e}")),
        }
    }
    let mut cli = Cli::with_options(kind, shards, backpressure);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    let interactive = std::env::var_os("PUBSUB_NO_PROMPT").is_none();

    if interactive {
        if shards == 0 {
            println!("fastpubsub broker ({}). Type `help`.", kind.label());
        } else {
            println!(
                "fastpubsub broker ({} x {shards} shards). Type `help`.",
                kind.label()
            );
        }
    }
    loop {
        if interactive {
            print!("> ");
            let _ = stdout.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        match cli.execute(&line) {
            Some(reply) => {
                if !reply.is_empty() {
                    println!("{reply}");
                }
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cli: &mut Cli, line: &str) -> String {
        cli.execute(line).expect("not a quit command")
    }

    #[test]
    fn subscribe_publish_flow() {
        let mut cli = Cli::with_shards(EngineKind::Dynamic, 0);
        let r = run(&mut cli, "sub movie = 'up' AND price <= 10");
        assert_eq!(r, "subscribed s0");
        let r = run(&mut cli, "pub {movie: 'up', price: 8}");
        assert_eq!(r, "matched: s0");
        let r = run(&mut cli, "pub {movie: 'up', price: 80}");
        assert_eq!(r, "matched: (none)");
        let r = run(&mut cli, "unsub s0");
        assert_eq!(r, "unsubscribed s0");
        let r = run(&mut cli, "pub {movie: 'up', price: 8}");
        assert_eq!(r, "matched: (none)");
    }

    #[test]
    fn dnf_flow() {
        let mut cli = Cli::with_shards(EngineKind::Dynamic, 0);
        let r = run(&mut cli, "sub from = 'NYC' OR from = 'EWR'");
        assert_eq!(r, "subscribed d0 (2 disjuncts)");
        let r = run(&mut cli, "pub {from: 'EWR'}");
        assert_eq!(r, "matched: d0");
        let r = run(&mut cli, "unsub d0");
        assert_eq!(r, "unsubscribed d0");
        let r = run(&mut cli, "pub {from: 'EWR'}");
        assert_eq!(r, "matched: (none)");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut cli = Cli::with_shards(EngineKind::Counting, 0);
        assert!(run(&mut cli, "sub price <").starts_with("error:"));
        assert!(run(&mut cli, "pub {broken").starts_with("error:"));
        assert!(run(&mut cli, "unsub s99").starts_with("error:"));
        assert!(run(&mut cli, "bogus").starts_with("error:"));
        // Still functional afterwards.
        assert_eq!(run(&mut cli, "sub a = 1"), "subscribed s0");
    }

    #[test]
    fn tick_and_stats() {
        let mut cli = Cli::with_shards(EngineKind::Dynamic, 0);
        run(&mut cli, "sub a = 1");
        run(&mut cli, "pub {a: 1}");
        let r = run(&mut cli, "tick 3");
        assert!(r.contains("now t3"), "{r}");
        let r = run(&mut cli, "stats");
        assert!(r.contains("subscriptions 1"), "{r}");
        assert!(r.contains("matches 1"), "{r}");
        assert!(r.contains("phase1/event"), "{r}");
        assert!(r.contains("phase2/event"), "{r}");
    }

    #[test]
    fn sharded_stats_report_per_shard_counts() {
        let mut cli = Cli::with_shards(EngineKind::Dynamic, 3);
        for i in 0..9 {
            run(&mut cli, &format!("sub a = {i}"));
        }
        run(&mut cli, "pub {a: 4}");
        let r = run(&mut cli, "stats");
        assert!(r.contains("engine sharded"), "{r}");
        assert!(r.contains("subscriptions 9"), "{r}");
        assert!(r.contains("shards 3"), "{r}");
        assert!(r.contains("per-shard subscriptions ["), "{r}");
        assert!(r.contains("matches 1"), "{r}");
    }

    #[test]
    fn stats_json_and_metrics_flags() {
        let mut cli = Cli::with_shards(EngineKind::Counting, 0);
        run(&mut cli, "sub a = 1");
        run(&mut cli, "pub {a: 1}");
        let r = run(&mut cli, "stats --json");
        assert!(r.starts_with("{\"checks\":"), "{r}");
        assert!(r.contains("\"engine\":\"counting\""), "{r}");
        assert!(r.contains("\"events\":1"), "{r}");
        assert!(r.ends_with("\"subscriptions\":1}"), "{r}");
        let r = run(&mut cli, "stats --metrics");
        assert!(r.contains("metrics"), "{r}");
        let r = run(&mut cli, "stats --json --metrics");
        assert!(r.contains("\"metrics\":{\"counters\":{"), "{r}");
        // With the feature on the snapshot must carry the published event.
        if pubsub_types::metrics::enabled() {
            assert!(r.contains("\"broker.publishes\":"), "{r}");
        }
        assert!(run(&mut cli, "stats --bogus").starts_with("error:"));
    }

    #[test]
    fn sharded_stats_report_robustness() {
        let mut cli = Cli::with_options(EngineKind::Counting, 2, Backpressure::Shed);
        run(&mut cli, "sub a = 1");
        let r = run(&mut cli, "stats");
        assert!(r.contains("robustness: panics 0"), "{r}");
        let r = run(&mut cli, "stats --json");
        assert!(r.contains("\"robustness\":{\"degraded_matches\":0"), "{r}");
        assert!(r.contains("\"worker_panics\":0}"), "{r}");
        // Key order stays ascending around the new key.
        let robustness = r.find("\"robustness\"").unwrap();
        assert!(r.find("\"phase2_nanos\"").unwrap() < robustness, "{r}");
        assert!(robustness < r.find("\"shards\"").unwrap(), "{r}");
        // Unsharded brokers have no robustness section.
        let mut plain = Cli::with_shards(EngineKind::Counting, 0);
        assert!(!run(&mut plain, "stats --json").contains("robustness"));
    }

    #[test]
    fn chaos_command_status_arm_clear() {
        let mut cli = Cli::with_shards(EngineKind::Counting, 2);
        let r = run(&mut cli, "chaos");
        assert!(r.contains("fault injection"), "{r}");
        assert_eq!(run(&mut cli, "chaos clear"), "cleared all fault rules");
        assert!(run(&mut cli, "chaos bogus").starts_with("error:"));
        assert!(run(&mut cli, "chaos arm").starts_with("error:"));
        if !faults::enabled() {
            // Arming requires the compiled-in registry.
            let r = run(&mut cli, "chaos arm p panic nth=1");
            assert!(r.starts_with("error:"), "{r}");
            return;
        }
        run(&mut cli, "sub a = 1");
        let r = run(&mut cli, "chaos arm core.sharded.worker.match panic nth=1");
        assert!(r.starts_with("armed Panic"), "{r}");
        // The armed panic fires at some match fan-out (this publish, unless
        // a concurrently running test consumed the one-shot rule first);
        // either way the supervised engine answers exactly.
        assert_eq!(run(&mut cli, "pub {a: 1}"), "matched: s0");
        let r = run(&mut cli, "stats --json");
        assert!(r.contains("\"robustness\":{"), "{r}");
        run(&mut cli, "chaos clear");
        assert_eq!(run(&mut cli, "pub {a: 1}"), "matched: s0");
    }

    #[test]
    fn chaos_parsers_reject_garbage() {
        assert!(parse_fault_action("panic").is_ok());
        assert!(parse_fault_action("corrupt").is_ok());
        assert_eq!(parse_fault_action("delay=25"), Ok(FaultAction::Delay(25)));
        assert!(parse_fault_action("explode").is_err());
        assert_eq!(parse_fault_schedule("nth=3"), Ok(Schedule::Nth(3)));
        assert_eq!(parse_fault_schedule("every=2"), Ok(Schedule::EveryNth(2)));
        assert_eq!(
            parse_fault_schedule("seed=42,1000"),
            Ok(Schedule::Seeded {
                seed: 42,
                prob_ppm: 1000
            })
        );
        assert!(parse_fault_schedule("sometimes").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut cli = Cli::with_shards(EngineKind::Dynamic, 0);
        assert_eq!(run(&mut cli, "# a comment"), "");
        assert_eq!(run(&mut cli, "   "), "");
        assert!(cli.execute("quit").is_none());
    }
}
