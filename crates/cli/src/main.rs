//! `pubsub` — an interactive command-line broker.
//!
//! The paper's prototype "runs as a process … waiting for subscriptions and
//! events to process"; this binary is that process in miniature, driven by
//! stdin lines (interactively or piped):
//!
//! ```text
//! sub movie = 'groundhog day' AND price <= 10
//! sub (from = 'NYC' AND price < 400) OR (from = 'EWR' AND price < 350)
//! pub {movie: 'groundhog day', price: 8}
//! unsub d0
//! tick 5
//! stats
//! wal verify /var/lib/pubsub
//! chaos arm core.sharded.worker.match panic nth=1
//! help
//! quit
//! ```
//!
//! Start with `cargo run -p pubsub-cli --bin pubsub -- [engine] [--shards N]
//! [--backpressure block|shed|error-fast] [--durable <dir>]` where `engine`
//! is one of `counting`, `propagation`, `propagation-wp`, `static`,
//! `dynamic` (default). `--shards N` partitions the subscription set across
//! `N` supervised parallel shard engines; `stats` then also reports
//! per-shard subscription counts and robustness counters (worker panics,
//! shard rebuilds, quarantined events). `--backpressure` selects the
//! sharded engine's overload policy. The `chaos` command drives the
//! deterministic fault-injection registry when the binary is built with
//! `--features faults`.
//!
//! `--durable <dir>` opens a crash-recoverable broker: every subscription,
//! unsubscription and clock advance is written to a segmented write-ahead
//! log in `dir` before it is applied, and restarting the binary against the
//! same directory recovers the exact acknowledged state (a torn final
//! record from a crash is truncated away). The `wal` command inspects and
//! maintains such directories — `wal verify`/`wal dump` work offline on any
//! directory, `wal snapshot` compacts the running broker's log. Durable
//! mode supports conjunctive subscriptions only (no OR).
//!
//! Two subcommands run instead of the REPL (see DESIGN.md §13):
//!
//! * `pubsub serve [engine] --addr <host:port> [--shards N] [--backpressure
//!   <policy>] [--publish-mode rcu|locked] [--queue-cap N] [--durable dir]
//!   [--follow <leader:port>] [--session-ttl <secs>] [--idle-deadline
//!   <secs>]` — the network-facing broker server. `--follow` (requires
//!   `--durable` for the replica's local log) starts a read-only follower
//!   tailing the leader's WAL; the serve console then answers `repl status
//!   [--json]` and `promote`. `--session-ttl` reaps sessions that stay
//!   detached past the TTL; `--idle-deadline` severs connections that send
//!   nothing (not even a `ping`) for that long — with `--durable`, both the
//!   session table and the resume tokens survive restarts and failover.
//! * `pubsub netload --addr <host:port> [--subscribers N] [--subs N]
//!   [--events N] [--values N] [--seed S] [--json path] [--min-rps X]` —
//!   the end-to-end load generator.

use pubsub_broker::{
    Broker, DnfId, DnfRegistry, DnfSubscription, PublishMode, SharedBroker, Validity,
};
use pubsub_core::{Backpressure, EngineKind, ShardedConfig};
use pubsub_durability::{DurabilityConfig, Wal};
use pubsub_lang::{parse_event, parse_subscription};
use pubsub_types::faults::{self, FaultAction, Schedule};
use pubsub_types::metrics::MetricsSnapshot;
use std::io::{BufRead, Write};
use std::path::PathBuf;

/// The broker behind the REPL: a single-threaded engine, or a durable
/// shard-locked handle writing a WAL. Boxed: a `Broker` embeds its whole
/// engine while `SharedBroker` is an `Arc`, and one REPL holds exactly one
/// backend, so the indirection costs nothing.
enum Backend {
    Volatile(Box<Broker>),
    Durable(SharedBroker),
}

struct Cli {
    backend: Backend,
    dnf: DnfRegistry,
}

impl Cli {
    /// `shards == 0` runs the engine unsharded; `shards >= 1` runs it behind
    /// a supervised sharded worker pool with the default overload policy.
    #[cfg(test)]
    fn with_shards(kind: EngineKind, shards: usize) -> Self {
        Self::with_options(kind, shards, Backpressure::Block)
    }

    /// Like [`Cli::with_shards`] with an explicit overload policy for the
    /// sharded engine (ignored when `shards == 0`).
    fn with_options(kind: EngineKind, shards: usize, backpressure: Backpressure) -> Self {
        let broker = if shards == 0 {
            Broker::new(kind)
        } else {
            let config = ShardedConfig {
                backpressure,
                ..ShardedConfig::default()
            };
            Broker::new_sharded_with(kind, shards, config)
        };
        Self {
            backend: Backend::Volatile(Box::new(broker)),
            dnf: DnfRegistry::new(),
        }
    }

    /// Opens a durable broker over `dir`, recovering previous state. Prints
    /// nothing here; the caller reports the recovery summary.
    fn durable(
        kind: EngineKind,
        shards: usize,
        backpressure: Backpressure,
        dir: &std::path::Path,
    ) -> Result<(Self, pubsub_durability::RecoveryReport), String> {
        let (broker, report) = SharedBroker::open_durable_with(
            kind,
            shards.max(1),
            backpressure,
            dir,
            DurabilityConfig::default(),
        )
        .map_err(|e| e.to_string())?;
        Ok((
            Self {
                backend: Backend::Durable(broker),
                dnf: DnfRegistry::new(),
            },
            report,
        ))
    }

    /// Executes one command line; returns the response text, or `None` to
    /// quit.
    fn execute(&mut self, line: &str) -> Option<String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Some(String::new());
        }
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let out = match cmd {
            "sub" | "subscribe" => self.cmd_subscribe(rest),
            "pub" | "publish" => self.cmd_publish(rest),
            "unsub" | "unsubscribe" => self.cmd_unsubscribe(rest),
            "tick" => self.cmd_tick(rest),
            "stats" => self.cmd_stats(rest),
            "wal" => self.cmd_wal(rest),
            "chaos" => self.cmd_chaos(rest),
            "help" => Ok(HELP.to_string()),
            "quit" | "exit" => return None,
            other => Err(format!("unknown command `{other}` (try `help`)")),
        };
        Some(out.unwrap_or_else(|e| format!("error: {e}")))
    }

    fn cmd_subscribe(&mut self, expr: &str) -> Result<String, String> {
        match &mut self.backend {
            Backend::Durable(shared) => {
                let parsed = shared
                    .with_vocab(|vocab| parse_subscription(expr, vocab))
                    .map_err(|e| e.render(expr))?;
                if !parsed.is_conjunctive() {
                    return Err(
                        "durable mode supports conjunctive subscriptions only; split the OR \
                         into separate `sub` commands or drop --durable"
                            .into(),
                    );
                }
                let id = shared
                    .try_subscribe(parsed.into_conjunction(), Validity::forever())
                    .map_err(|e| e.to_string())?;
                Ok(format!("subscribed {id}"))
            }
            Backend::Volatile(broker) => {
                let parsed = parse_subscription(expr, broker.vocabulary_mut())
                    .map_err(|e| e.render(expr))?;
                if parsed.is_conjunctive() {
                    let id = broker.subscribe(parsed.into_conjunction(), Validity::forever());
                    Ok(format!("subscribed {id}"))
                } else {
                    let dnf = DnfSubscription::new(parsed.disjuncts).expect("non-empty");
                    let n = dnf.disjuncts().len();
                    let id = self.dnf.subscribe(broker, dnf, Validity::forever());
                    Ok(format!("subscribed {id} ({n} disjuncts)"))
                }
            }
        }
    }

    fn cmd_publish(&mut self, expr: &str) -> Result<String, String> {
        if expr.contains(';') {
            return self.cmd_publish_batch(expr);
        }
        let names: Vec<String> = match &mut self.backend {
            Backend::Durable(shared) => {
                let event = shared
                    .with_vocab(|vocab| parse_event(expr, vocab))
                    .map_err(|e| e.render(expr))?;
                shared
                    .publish(&event)
                    .iter()
                    .map(|s| s.to_string())
                    .collect()
            }
            Backend::Volatile(broker) => {
                let event =
                    parse_event(expr, broker.vocabulary_mut()).map_err(|e| e.render(expr))?;
                let (dnf_hits, plain) = self.dnf.publish(broker, &event);
                let mut names: Vec<String> = plain.iter().map(|s| s.to_string()).collect();
                names.extend(dnf_hits.iter().map(|d| d.to_string()));
                names
            }
        };
        if names.is_empty() {
            Ok("matched: (none)".into())
        } else {
            Ok(format!("matched: {}", names.join(", ")))
        }
    }

    /// `pub e1; e2; ...` — all events parsed up front, then matched in one
    /// batched publish (`publish_batch`), which rides the attribute-major
    /// phase-1 path and visits each shard once for the whole batch. Output
    /// is one `[i] matched: ...` line per event, in submission order.
    fn cmd_publish_batch(&mut self, expr: &str) -> Result<String, String> {
        let exprs: Vec<&str> = expr
            .split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        if exprs.is_empty() {
            return Err("empty batch: nothing between the `;`s".into());
        }
        let per_event: Vec<Vec<String>> = match &mut self.backend {
            Backend::Durable(shared) => {
                let events = shared.with_vocab(|vocab| {
                    exprs
                        .iter()
                        .map(|e| parse_event(e, vocab).map_err(|err| err.render(e)))
                        .collect::<Result<Vec<_>, _>>()
                })?;
                shared
                    .publish_batch(&events)
                    .iter()
                    .map(|m| m.iter().map(|s| s.to_string()).collect())
                    .collect()
            }
            Backend::Volatile(broker) => {
                let events = exprs
                    .iter()
                    .map(|e| parse_event(e, broker.vocabulary_mut()).map_err(|err| err.render(e)))
                    .collect::<Result<Vec<_>, _>>()?;
                let notifications = broker.publish_batch(&events);
                notifications
                    .iter()
                    .map(|n| {
                        let mut dnf_hits = Vec::new();
                        let mut plain = Vec::new();
                        self.dnf.translate(&n.matched, &mut dnf_hits, &mut plain);
                        let mut names: Vec<String> = plain.iter().map(|s| s.to_string()).collect();
                        names.extend(dnf_hits.iter().map(|d| d.to_string()));
                        names
                    })
                    .collect()
            }
        };
        let lines: Vec<String> = per_event
            .iter()
            .enumerate()
            .map(|(i, names)| {
                if names.is_empty() {
                    format!("[{i}] matched: (none)")
                } else {
                    format!("[{i}] matched: {}", names.join(", "))
                }
            })
            .collect();
        Ok(lines.join("\n"))
    }

    fn cmd_unsubscribe(&mut self, id: &str) -> Result<String, String> {
        let ok = if let Some(num) = id.strip_prefix('d') {
            let n: u64 = num.parse().map_err(|_| format!("bad id `{id}`"))?;
            match &mut self.backend {
                Backend::Durable(_) => {
                    return Err("durable mode has no DNF subscriptions".into());
                }
                Backend::Volatile(broker) => self.dnf.unsubscribe(broker, DnfId(n)),
            }
        } else {
            let n: u32 = id
                .strip_prefix('s')
                .unwrap_or(id)
                .parse()
                .map_err(|_| format!("bad id `{id}`"))?;
            let sid = pubsub_types::SubscriptionId(n);
            match &mut self.backend {
                Backend::Durable(shared) => {
                    shared.try_unsubscribe(sid).map_err(|e| e.to_string())?
                }
                Backend::Volatile(broker) => broker.unsubscribe(sid),
            }
        };
        if ok {
            Ok(format!("unsubscribed {id}"))
        } else {
            Err(format!("no subscription `{id}`"))
        }
    }

    fn cmd_tick(&mut self, arg: &str) -> Result<String, String> {
        let n: u64 = if arg.is_empty() {
            1
        } else {
            arg.parse().map_err(|_| format!("bad tick count `{arg}`"))?
        };
        match &mut self.backend {
            Backend::Durable(shared) => {
                let mut subs = 0;
                for _ in 0..n {
                    subs += shared.try_tick().map_err(|e| e.to_string())?;
                }
                Ok(format!(
                    "now {}; expired {subs} subscription(s)",
                    shared.now()
                ))
            }
            Backend::Volatile(broker) => {
                let mut subs = 0;
                let mut events = 0;
                for _ in 0..n {
                    let (s, e) = broker.tick();
                    subs += s;
                    events += e;
                }
                Ok(format!(
                    "now {}; expired {subs} subscription(s), {events} event(s)",
                    broker.now()
                ))
            }
        }
    }

    /// `wal <verify|dump|compact|snapshot> [dir]`: WAL inspection and
    /// maintenance. `verify` and `dump` are read-only and work on any
    /// directory (defaulting to the running broker's in durable mode);
    /// `compact` opens a directory offline and drops segments superseded by
    /// its newest snapshot; `snapshot` asks the running durable broker for a
    /// point-in-time snapshot (which also compacts).
    fn cmd_wal(&mut self, rest: &str) -> Result<String, String> {
        const USAGE: &str = "usage: wal <verify|dump|compact|snapshot> [dir]";
        let mut toks = rest.split_whitespace();
        let sub = toks.next().ok_or(USAGE)?;
        let dir_arg: Option<PathBuf> = toks.next().map(PathBuf::from);
        if toks.next().is_some() {
            return Err(USAGE.into());
        }
        let own_dir = || match &self.backend {
            Backend::Durable(shared) => shared.durability().map(|d| d.dir),
            Backend::Volatile(_) => None,
        };
        let resolve = |dir_arg: Option<PathBuf>| {
            dir_arg.or_else(own_dir).ok_or_else(|| {
                "no WAL directory: pass one explicitly or run with --durable <dir>".to_string()
            })
        };
        match sub {
            "verify" => {
                let dir = resolve(dir_arg)?;
                let report = Wal::verify(&dir).map_err(|e| e.to_string())?;
                let mut out = format!(
                    "{}: {} segment(s), {} snapshot(s), {} record(s); {}",
                    dir.display(),
                    report.segments.len(),
                    report.snapshots.len(),
                    report.total_records(),
                    if report.healthy() {
                        "healthy"
                    } else {
                        "DAMAGED"
                    },
                );
                for seg in &report.segments {
                    out.push_str(&format!(
                        "\n  {}  first-lsn {}  records {}  bytes {}{}",
                        seg.file,
                        seg.first_lsn,
                        seg.records,
                        seg.bytes,
                        match &seg.damage {
                            Some(d) => format!("  DAMAGED: {d}"),
                            None => String::new(),
                        }
                    ));
                }
                for snap in &report.snapshots {
                    out.push_str(&format!(
                        "\n  {}  lsn {}  {}  subs {}",
                        snap.file,
                        snap.lsn,
                        if snap.valid { "valid" } else { "INVALID" },
                        snap.subs,
                    ));
                }
                Ok(out)
            }
            "dump" => {
                let dir = resolve(dir_arg)?;
                let ops = Wal::dump(&dir).map_err(|e| e.to_string())?;
                if ops.is_empty() {
                    return Ok(format!("{}: empty log", dir.display()));
                }
                let lines: Vec<String> = ops
                    .iter()
                    .map(|(lsn, op)| format!("{lsn:>8}  {op}"))
                    .collect();
                Ok(lines.join("\n"))
            }
            "compact" => {
                let dir = dir_arg.ok_or("wal compact needs an explicit <dir> (offline only)")?;
                if own_dir().is_some_and(|own| own == dir) {
                    return Err(
                        "this broker holds that directory open; use `wal snapshot` instead".into(),
                    );
                }
                let (mut wal, _) =
                    Wal::open(&dir, DurabilityConfig::default()).map_err(|e| e.to_string())?;
                let removed = wal.compact().map_err(|e| e.to_string())?;
                Ok(format!(
                    "compacted {}: removed {removed} file(s)",
                    dir.display()
                ))
            }
            "snapshot" => {
                if dir_arg.is_some() {
                    return Err(
                        "wal snapshot takes no directory (snapshots the running broker)".into(),
                    );
                }
                match &self.backend {
                    Backend::Durable(shared) => {
                        let path = shared.snapshot().map_err(|e| e.to_string())?;
                        Ok(format!("snapshot written: {}", path.display()))
                    }
                    Backend::Volatile(_) => {
                        Err("snapshots need a durable broker (run with --durable <dir>)".into())
                    }
                }
            }
            other => Err(format!(
                "unknown wal subcommand `{other}` (known: verify dump compact snapshot)"
            )),
        }
    }

    /// `chaos [status|clear|arm <point> <action> <schedule> [lane=<n>]]`:
    /// drives the deterministic fault-injection registry. Actions are
    /// `panic`, `corrupt`, `fail`, `delay=<ms>`; schedules are `nth=<n>`,
    /// `every=<n>`, `seed=<seed>,<ppm>`. Requires `--features faults` to
    /// arm; `status`/`clear` always work.
    fn cmd_chaos(&mut self, rest: &str) -> Result<String, String> {
        let mut toks = rest.split_whitespace();
        match toks.next() {
            None | Some("status") => Ok(format!(
                "fault injection {}; {} rule(s) armed",
                if faults::enabled() {
                    "enabled"
                } else {
                    "unavailable (build with --features faults)"
                },
                faults::armed()
            )),
            Some("clear") => {
                faults::clear();
                Ok("cleared all fault rules".into())
            }
            Some("arm") => {
                if !faults::enabled() {
                    return Err(
                        "fault injection unavailable; rebuild with --features faults".into(),
                    );
                }
                const USAGE: &str = "usage: chaos arm <point> <action> <schedule> [lane=<n>]";
                let point = toks.next().ok_or(USAGE)?;
                let action = parse_fault_action(toks.next().ok_or(USAGE)?)?;
                let schedule = parse_fault_schedule(toks.next().ok_or(USAGE)?)?;
                let mut lane = None;
                for tok in toks {
                    let n = tok
                        .strip_prefix("lane=")
                        .ok_or_else(|| format!("unexpected token `{tok}` ({USAGE})"))?;
                    lane = Some(n.parse::<usize>().map_err(|_| format!("bad lane `{n}`"))?);
                }
                faults::arm(point, lane, action, schedule);
                Ok(format!(
                    "armed {action:?} on {point} ({} rule(s) armed)",
                    faults::armed()
                ))
            }
            Some(other) => Err(format!(
                "unknown chaos subcommand `{other}` (known: status clear arm)"
            )),
        }
    }

    /// `stats [--json] [--metrics]`: engine statistics, optionally as a
    /// single-line JSON document and/or with the global `MetricsSnapshot`.
    fn cmd_stats(&mut self, rest: &str) -> Result<String, String> {
        let mut json = false;
        let mut metrics = false;
        for tok in rest.split_whitespace() {
            match tok {
                "--json" => json = true,
                "--metrics" => metrics = true,
                other => {
                    return Err(format!(
                        "unknown stats flag `{other}` (known: --json --metrics)"
                    ))
                }
            }
        }
        match &mut self.backend {
            Backend::Durable(shared) => Self::stats_durable(shared, json, metrics),
            Backend::Volatile(broker) => Self::stats_volatile(broker, json, metrics),
        }
    }

    fn stats_durable(shared: &SharedBroker, json: bool, metrics: bool) -> Result<String, String> {
        // Aggregate the shard engines' counters into one view. Work done
        // (checks, matches, nanos) sums across shards; every shard sees
        // every published event, so the event count is the max, not the sum.
        let mut s = pubsub_core::EngineStats::default();
        let mut name = "";
        for shard in 0..shared.shard_count() {
            shared.with_shard(shard, |b| {
                let e = b.engine_stats();
                s.events = s.events.max(e.events);
                s.phase1_nanos += e.phase1_nanos;
                s.phase2_nanos += e.phase2_nanos;
                s.subscriptions_checked += e.subscriptions_checked;
                s.matches += e.matches;
                name = b.engine_name();
            });
        }
        // Under the RCU publish mode the shard engines see no read traffic
        // (publishes match the published snapshot), so fold in the
        // snapshot-side aggregate too. Zero in locked mode, and vice versa.
        let r = shared.rcu_stats();
        s.events = s.events.max(r.events);
        s.phase1_nanos += r.phase1_nanos;
        s.phase2_nanos += r.phase2_nanos;
        s.subscriptions_checked += r.subscriptions_checked;
        s.matches += r.matches;
        let rcu = shared.rcu_status();
        let mode = match rcu.mode {
            PublishMode::Rcu => "rcu",
            PublishMode::Locked => "locked",
        };
        let d = shared.durability().expect("durable backend");
        let counts = shared.shard_subscription_counts();
        let fmt_opt = |v: Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
        if json {
            // Keys in ascending order, pubsub-workload::json conventions.
            let mut out = format!(
                "{{\"checks\":{},\"durability\":{{\"degraded\":{},\"dir\":{:?},\"follower\":{},\
                 \"next_lsn\":{},\
                 \"ops_since_snapshot\":{},\"recovery\":{{\"bytes_abandoned\":{},\
                 \"records_replayed\":{},\"records_skipped\":{},\"segments_removed\":{},\
                 \"segments_scanned\":{},\"snapshot_lsn\":{},\"snapshots_discarded\":{},\
                 \"torn_tail_truncated\":{}}}}},\"engine\":{:?},\"events\":{},\"matches\":{}",
                s.subscriptions_checked,
                d.degraded,
                d.dir.display().to_string(),
                d.follower,
                d.next_lsn,
                d.ops_since_snapshot,
                d.recovery.bytes_abandoned,
                d.recovery.records_replayed,
                d.recovery.records_skipped,
                d.recovery.segments_removed,
                d.recovery.segments_scanned,
                fmt_opt(d.recovery.snapshot_lsn),
                d.recovery.snapshots_discarded,
                fmt_opt(d.recovery.torn_tail_truncated),
                name,
                s.events,
                s.matches,
            );
            if metrics {
                out.push_str(&format!(
                    ",\"metrics\":{}",
                    MetricsSnapshot::capture().to_json()
                ));
            }
            let list: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!(
                ",\"phase1_nanos\":{},\"phase2_nanos\":{},\"rcu\":{{\"active_readers\":{},\
                 \"epoch\":{},\"flips\":{},\"mode\":\"{}\",\"retired\":{}}},\
                 \"shards\":[{}],\"subscriptions\":{}}}",
                s.phase1_nanos,
                s.phase2_nanos,
                rcu.active_readers,
                rcu.epoch,
                rcu.flips,
                mode,
                rcu.retired,
                list.join(","),
                shared.subscription_count(),
            ));
            return Ok(out);
        }
        let mut out = format!(
            "engine {name} (durable)  subscriptions {}  events {}  checks/event {:.1}  matches {}\n\
             shards {}  per-shard subscriptions {counts:?}\n\
             durability: dir {}  next-lsn {}  since-snapshot {}  degraded {}  role {}\n\
             recovery: replayed {}  skipped {}  torn-truncated {}  snapshots-discarded {}  \
             segments-scanned {}",
            shared.subscription_count(),
            s.events,
            s.checks_per_event(),
            s.matches,
            counts.len(),
            d.dir.display(),
            d.next_lsn,
            d.ops_since_snapshot,
            if d.degraded { "YES" } else { "no" },
            if d.follower { "follower" } else { "leader" },
            d.recovery.records_replayed,
            d.recovery.records_skipped,
            d.recovery
                .torn_tail_truncated
                .map_or("none".to_string(), |b| format!("{b}B")),
            d.recovery.snapshots_discarded,
            d.recovery.segments_scanned,
        );
        out.push_str(&format!(
            "\nrcu: mode {mode}  flips {}  epoch {}  retired {}  active-readers {}",
            rcu.flips, rcu.epoch, rcu.retired, rcu.active_readers,
        ));
        if let Some(cause) = &d.degraded_cause {
            out.push_str(&format!("\ndegraded cause: {cause}"));
        }
        if metrics {
            Self::push_metrics_text(&mut out);
        }
        Ok(out)
    }

    fn stats_volatile(broker: &Broker, json: bool, metrics: bool) -> Result<String, String> {
        let s = broker.engine_stats();
        if json {
            // Keys in ascending order, pubsub-workload::json conventions.
            let mut out = format!(
                "{{\"checks\":{},\"engine\":{:?},\"events\":{},\"matches\":{}",
                s.subscriptions_checked,
                broker.engine_name(),
                s.events,
                s.matches,
            );
            if metrics {
                out.push_str(&format!(
                    ",\"metrics\":{}",
                    MetricsSnapshot::capture().to_json()
                ));
            }
            out.push_str(&format!(
                ",\"phase1_nanos\":{},\"phase2_nanos\":{}",
                s.phase1_nanos, s.phase2_nanos
            ));
            if let Some(h) = broker.shard_health() {
                out.push_str(&format!(
                    ",\"robustness\":{{\"degraded_matches\":{},\"quarantined_events\":{},\
                     \"replayed_subscriptions\":{},\"sealed_shards\":{},\"shard_rebuilds\":{},\
                     \"shed_requests\":{},\"spawn_fallbacks\":{},\"worker_panics\":{}}}",
                    h.degraded_matches,
                    h.quarantined_events,
                    h.replayed_subscriptions,
                    h.sealed_shards,
                    h.shard_rebuilds,
                    h.shed_requests,
                    h.spawn_fallbacks,
                    h.worker_panics,
                ));
            }
            if let Some(counts) = broker.shard_subscription_counts() {
                let list: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
                out.push_str(&format!(",\"shards\":[{}]", list.join(",")));
            }
            out.push_str(&format!(
                ",\"stored_events\":{},\"subscriptions\":{}}}",
                broker.stored_event_count(),
                broker.subscription_count(),
            ));
            return Ok(out);
        }
        let per_event_us = |nanos: u64| {
            if s.events == 0 {
                0.0
            } else {
                nanos as f64 / s.events as f64 / 1000.0
            }
        };
        let mut out = format!(
            "engine {}  subscriptions {}  stored-events {}  events {}  checks/event {:.1}  matches {}\n\
             phase1/event {:.1}µs  phase2/event {:.1}µs",
            broker.engine_name(),
            broker.subscription_count(),
            broker.stored_event_count(),
            s.events,
            s.checks_per_event(),
            s.matches,
            per_event_us(s.phase1_nanos),
            per_event_us(s.phase2_nanos),
        );
        if let Some(counts) = broker.shard_subscription_counts() {
            out.push_str(&format!(
                "\nshards {}  per-shard subscriptions {counts:?}",
                counts.len()
            ));
        }
        if let Some(h) = broker.shard_health() {
            out.push_str(&format!(
                "\nrobustness: panics {}  rebuilds {}  replayed {}  quarantined {}  \
                 degraded {}  shed {}  spawn-fallbacks {}  sealed {}",
                h.worker_panics,
                h.shard_rebuilds,
                h.replayed_subscriptions,
                h.quarantined_events,
                h.degraded_matches,
                h.shed_requests,
                h.spawn_fallbacks,
                h.sealed_shards,
            ));
            if !h.last_quarantined.is_empty() {
                out.push_str(&format!(
                    "  (holding last {} quarantined event(s))",
                    h.last_quarantined.len()
                ));
            }
        }
        if metrics {
            Self::push_metrics_text(&mut out);
        }
        Ok(out)
    }

    fn push_metrics_text(out: &mut String) {
        let snap = MetricsSnapshot::capture();
        if snap.is_empty() {
            out.push_str("\nmetrics: (empty; build with `--features metrics`)");
        } else {
            out.push_str("\nmetrics:");
            for c in &snap.counters {
                out.push_str(&format!("\n  {} = {}", c.name, c.value));
            }
            for h in &snap.histograms {
                out.push_str(&format!("\n  {} count {} sum {}", h.name, h.count, h.sum));
            }
        }
    }
}

fn parse_fault_action(s: &str) -> Result<FaultAction, String> {
    if let Some(ms) = s.strip_prefix("delay=") {
        let ms: u64 = ms.parse().map_err(|_| format!("bad delay `{ms}`"))?;
        return Ok(FaultAction::Delay(ms));
    }
    match s {
        "panic" => Ok(FaultAction::Panic),
        "corrupt" => Ok(FaultAction::Corrupt),
        "fail" => Ok(FaultAction::Fail),
        other => Err(format!(
            "unknown action `{other}` (known: panic corrupt fail delay=<ms>)"
        )),
    }
}

fn parse_fault_schedule(s: &str) -> Result<Schedule, String> {
    if let Some(n) = s.strip_prefix("nth=") {
        let n: u64 = n.parse().map_err(|_| format!("bad count `{n}`"))?;
        return Ok(Schedule::Nth(n));
    }
    if let Some(n) = s.strip_prefix("every=") {
        let n: u64 = n.parse().map_err(|_| format!("bad count `{n}`"))?;
        return Ok(Schedule::EveryNth(n));
    }
    if let Some(rest) = s.strip_prefix("seed=") {
        let (seed, ppm) = rest
            .split_once(',')
            .ok_or_else(|| format!("bad seed schedule `{rest}` (want seed=<seed>,<ppm>)"))?;
        let seed: u64 = seed.parse().map_err(|_| format!("bad seed `{seed}`"))?;
        let prob_ppm: u32 = ppm.parse().map_err(|_| format!("bad ppm `{ppm}`"))?;
        return Ok(Schedule::Seeded { seed, prob_ppm });
    }
    Err(format!(
        "unknown schedule `{s}` (known: nth=<n> every=<n> seed=<seed>,<ppm>)"
    ))
}

const HELP: &str = "\
commands:
  sub <expr>     register a subscription, e.g.  sub price <= 10 AND movie = 'up'
                 (use OR for disjunctions; conjunctive-only under --durable)
  pub <event>    publish an event, e.g.        pub {price: 8, movie: 'up'}
                 separate several events with `;` to publish them as one
                 batch (amortized phase 1, one fan-out per shard):
                 pub {price: 8}; {price: 80}
  unsub <id>     remove a subscription by the id printed at sub time
  tick [n]       advance the logical clock (expires validities)
  stats          engine statistics; `--json` for machine-readable output,
                 `--metrics` to include the global metrics snapshot
                 (requires building with `--features metrics`); sharded
                 engines also report robustness counters (panics, rebuilds,
                 quarantined events); durable brokers report a durability
                 block (WAL position, recovery summary, degraded state)
  wal            WAL inspection/maintenance for --durable brokers:
                 `wal verify [dir]`, `wal dump [dir]` (read-only, any
                 directory), `wal compact <dir>` (offline), `wal snapshot`
                 (snapshot + compact the running durable broker)
  chaos          fault injection (requires `--features faults`):
                 `chaos status`, `chaos clear`,
                 `chaos arm <point> <action> <schedule> [lane=<n>]` with
                 action panic|corrupt|fail|delay=<ms>, schedule
                 nth=<n>|every=<n>|seed=<seed>,<ppm>; points include
                 core.sharded.worker.op, core.sharded.worker.match,
                 core.sharded.spawn (lane = shard index), the durability
                 points durability.wal.append, durability.wal.fsync,
                 durability.wal.rotate, durability.wal.read,
                 durability.snapshot.write, the server points
                 net.server.accept, net.server.handshake,
                 net.server.frame.read, net.server.frame.write, and the
                 replication points net.repl.accept, net.repl.stream.read,
                 net.repl.apply, net.repl.snapshot.fetch
  help           this text
  quit           exit";

/// Opens the replica broker behind `serve --follow`. The directory must be
/// empty, absent, or a directory this (or a previous) follower already
/// owned: pointing `--follow` at an existing leader WAL would interleave
/// two unrelated logs, so that case is a typed refusal
/// ([`pubsub_broker::BrokerError::ForeignHistory`]) rather than a fork.
fn open_follower_broker(
    kind: EngineKind,
    shards: usize,
    dir: &std::path::Path,
) -> Result<(SharedBroker, pubsub_durability::RecoveryReport), String> {
    SharedBroker::open_follower(kind, shards.max(1), dir, DurabilityConfig::default())
        .map_err(|e| e.to_string())
}

/// One-line human rendering of a follower's [`pubsub_net::ReplStatus`] for
/// the `repl status` serve command.
fn repl_status_line(s: &pubsub_net::ReplStatus) -> String {
    let yesno = |b: bool| if b { "yes" } else { "no" };
    let opt = |v: Option<u64>| v.map_or("?".to_string(), |v| v.to_string());
    format!(
        "replication: role {}  connected {}  stale {}  applied {}  leader {}  lag {}  \
         last-contact {}  connects {}",
        if s.promoted {
            "leader(promoted)"
        } else {
            "follower"
        },
        yesno(s.connected),
        yesno(s.stale),
        s.next_lsn,
        opt(s.leader_next_lsn),
        opt(s.lag),
        s.millis_since_contact
            .map_or("never".to_string(), |ms| format!("{ms}ms")),
        s.connects,
    )
}

/// `pubsub serve`: run the network-facing broker server until `quit` on
/// stdin (or forever when stdin is closed, e.g. backgrounded in a script).
/// With `--follow <addr>` the broker comes up as a read-only replica
/// tailing that leader's WAL; the stdin commands `repl status [--json]`
/// and `promote` then drive failover.
fn serve_main(args: impl Iterator<Item = String>) {
    let mut kind = EngineKind::Dynamic;
    let mut shards = pubsub_core::default_shards();
    let mut backpressure = Backpressure::Block;
    let mut publish_mode = PublishMode::Rcu;
    let mut addr = String::from("127.0.0.1:7171");
    let mut queue_cap = 256usize;
    let mut durable_dir: Option<PathBuf> = None;
    let mut follow: Option<String> = None;
    let mut session_ttl: Option<std::time::Duration> = None;
    let mut idle_deadline: Option<std::time::Duration> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().expect("--addr needs host:port"),
            "--shards" => {
                shards = args
                    .next()
                    .expect("--shards needs a value")
                    .parse()
                    .expect("integer shard count");
            }
            "--backpressure" => {
                backpressure = args
                    .next()
                    .expect("--backpressure needs a value")
                    .parse()
                    .unwrap_or_else(|e| panic!("{e}"));
            }
            "--publish-mode" => {
                publish_mode = match args.next().expect("--publish-mode needs a value").as_str() {
                    "rcu" => PublishMode::Rcu,
                    "locked" => PublishMode::Locked,
                    other => panic!("unknown publish mode `{other}` (rcu|locked)"),
                };
            }
            "--queue-cap" => {
                queue_cap = args
                    .next()
                    .expect("--queue-cap needs a value")
                    .parse()
                    .expect("integer queue capacity");
            }
            "--durable" => {
                durable_dir = Some(PathBuf::from(args.next().expect("--durable needs a dir")));
            }
            "--follow" => {
                follow = Some(args.next().expect("--follow needs the leader host:port"));
            }
            "--session-ttl" => {
                let secs: f64 = args
                    .next()
                    .expect("--session-ttl needs seconds")
                    .parse()
                    .expect("seconds (fractional ok)");
                session_ttl = Some(std::time::Duration::from_secs_f64(secs));
            }
            "--idle-deadline" => {
                let secs: f64 = args
                    .next()
                    .expect("--idle-deadline needs seconds")
                    .parse()
                    .expect("seconds (fractional ok)");
                idle_deadline = Some(std::time::Duration::from_secs_f64(secs));
            }
            other => kind = other.parse().unwrap_or_else(|e| panic!("{e}")),
        }
    }
    let broker = match (&follow, &durable_dir) {
        (Some(_), None) => {
            panic!("--follow needs --durable <dir> for the replica's local log")
        }
        (Some(_), Some(dir)) => {
            let (broker, report) =
                open_follower_broker(kind, shards, dir).unwrap_or_else(|e| panic!("{e}"));
            println!(
                "replica recovered {} op(s) from {}",
                report.records_replayed,
                dir.display()
            );
            broker
        }
        (None, Some(dir)) => {
            let (broker, report) = SharedBroker::open_durable_with(
                kind,
                shards.max(1),
                backpressure,
                dir,
                DurabilityConfig::default(),
            )
            .unwrap_or_else(|e| panic!("{e}"));
            println!(
                "recovered {} op(s) from {}",
                report.records_replayed,
                dir.display()
            );
            broker
        }
        (None, None) => {
            SharedBroker::with_publish_mode(kind, shards.max(1), backpressure, publish_mode)
        }
    };
    if let Some(warning) = broker.config_warning() {
        eprintln!("warning: {warning}");
        eprintln!(
            "warning: the network delivery queues still honor `{}`",
            backpressure_label(backpressure)
        );
    }
    let config = pubsub_net::ServerConfig {
        queue_capacity: queue_cap,
        delivery: backpressure,
        session_ttl,
        idle_deadline,
        ..pubsub_net::ServerConfig::default()
    };
    let broker = std::sync::Arc::new(broker);
    let server =
        pubsub_net::Server::start_with(std::sync::Arc::clone(&broker), addr.as_str(), config)
            .unwrap_or_else(|e| panic!("bind {addr}: {e}"));
    let follower = follow.map(|leader| {
        let f = pubsub_net::Follower::start(
            std::sync::Arc::clone(&broker),
            leader.as_str(),
            pubsub_net::FollowerConfig::default(),
        )
        .unwrap_or_else(|e| panic!("follow {leader}: {e}"));
        println!("following {leader} (read-only until `promote`)");
        f
    });
    println!(
        "fastpubsub serving {} x {} shard(s) on {} (delivery: {}). `quit` to stop.",
        kind.label(),
        shards.max(1),
        server.local_addr(),
        backpressure_label(backpressure),
    );
    let stdin = std::io::stdin();
    loop {
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            // Detached stdin (`serve ... &` in a script): park until the
            // process is killed; the server threads keep running.
            Ok(0) | Err(_) => loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            },
            Ok(_) => match line.trim() {
                "quit" | "exit" => break,
                "" => {}
                "repl status" | "repl status --json" => match &follower {
                    Some(f) => {
                        let status = f.status();
                        if line.contains("--json") {
                            println!("{}", status.to_json());
                        } else {
                            println!("{}", repl_status_line(&status));
                        }
                    }
                    None => println!("error: not a follower (start with --follow <leader>)"),
                },
                "promote" => match &follower {
                    Some(f) => match f.promote() {
                        Ok(lsn) => println!("promoted: writable, next lsn {lsn}"),
                        Err(e) => println!("error: {e}"),
                    },
                    None => println!("error: not a follower (start with --follow <leader>)"),
                },
                other => println!(
                    "unknown serve command `{other}` (known: repl status [--json], promote, quit)"
                ),
            },
        }
    }
    if let Some(f) = &follower {
        f.stop();
    }
    server.shutdown();
}

fn backpressure_label(bp: Backpressure) -> &'static str {
    match bp {
        Backpressure::Block => "block",
        Backpressure::Shed => "shed",
        Backpressure::ErrorFast => "error-fast",
    }
}

/// `pubsub netload`: drive a load workload against a running server and
/// report (optionally persist) the measurements.
fn netload_main(args: impl Iterator<Item = String>) {
    let mut config = pubsub_net::LoadConfig {
        addr: String::from("127.0.0.1:7171"),
        ..pubsub_net::LoadConfig::default()
    };
    let mut json_path: Option<PathBuf> = None;
    let mut min_rps: Option<f64> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut num = |what: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = num("--addr"),
            "--subscribers" => config.subscribers = num("--subscribers").parse().expect("integer"),
            "--subs" => config.subs_per_connection = num("--subs").parse().expect("integer"),
            "--events" => config.events = num("--events").parse().expect("integer"),
            "--values" => config.value_space = num("--values").parse().expect("integer"),
            "--seed" => config.seed = num("--seed").parse().expect("integer"),
            "--json" => json_path = Some(PathBuf::from(num("--json"))),
            "--min-rps" => min_rps = Some(num("--min-rps").parse().expect("number")),
            other => panic!("unknown netload flag `{other}`"),
        }
    }
    let report = pubsub_net::load::run(&config).unwrap_or_else(|e| panic!("netload: {e}"));
    let json = report.to_json();
    print!("{json}");
    if let Some(path) = json_path {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    }
    if let Some(min) = min_rps {
        if report.publish_rps < min {
            eprintln!(
                "netload: publish_rps {:.1} below the required {min:.1}",
                report.publish_rps
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut raw = std::env::args().skip(1).peekable();
    match raw.peek().map(String::as_str) {
        Some("serve") => {
            raw.next();
            return serve_main(raw);
        }
        Some("netload") => {
            raw.next();
            return netload_main(raw);
        }
        _ => {}
    }
    let mut kind = EngineKind::Dynamic;
    let mut shards = 0usize;
    let mut backpressure = Backpressure::Block;
    let mut durable_dir: Option<PathBuf> = None;
    let mut args = raw;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                shards = args
                    .next()
                    .expect("--shards needs a value")
                    .parse()
                    .expect("integer shard count");
            }
            "--backpressure" => {
                backpressure = args
                    .next()
                    .expect("--backpressure needs a value")
                    .parse()
                    .unwrap_or_else(|e| panic!("{e}"));
            }
            "--durable" => {
                durable_dir = Some(PathBuf::from(args.next().expect("--durable needs a dir")));
            }
            other => kind = other.parse().unwrap_or_else(|e| panic!("{e}")),
        }
    }
    let interactive = std::env::var_os("PUBSUB_NO_PROMPT").is_none();
    let mut cli = match &durable_dir {
        Some(dir) => {
            let (cli, report) =
                Cli::durable(kind, shards, backpressure, dir).unwrap_or_else(|e| panic!("{e}"));
            // `Shed`/`ErrorFast` never fire under the RCU publish mode the
            // durable handle defaults to; say so instead of silently
            // accepting a policy that cannot act.
            if let Backend::Durable(broker) = &cli.backend {
                if let Some(warning) = broker.config_warning() {
                    eprintln!("warning: {warning}");
                }
            }
            if interactive {
                println!(
                    "fastpubsub durable broker ({}, {}). Recovered {} op(s){}. Type `help`.",
                    kind.label(),
                    dir.display(),
                    report.records_replayed,
                    match report.torn_tail_truncated {
                        Some(b) => format!(", truncated {b}B torn tail"),
                        None => String::new(),
                    }
                );
            }
            cli
        }
        None => {
            let cli = Cli::with_options(kind, shards, backpressure);
            if interactive {
                if shards == 0 {
                    println!("fastpubsub broker ({}). Type `help`.", kind.label());
                } else {
                    println!(
                        "fastpubsub broker ({} x {shards} shards). Type `help`.",
                        kind.label()
                    );
                }
            }
            cli
        }
    };
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();

    loop {
        if interactive {
            print!("> ");
            let _ = stdout.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        match cli.execute(&line) {
            Some(reply) => {
                if !reply.is_empty() {
                    println!("{reply}");
                }
            }
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cli: &mut Cli, line: &str) -> String {
        cli.execute(line).expect("not a quit command")
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fp-cli-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_cli(dir: &std::path::Path) -> Cli {
        Cli::durable(EngineKind::Dynamic, 2, Backpressure::Block, dir)
            .expect("open durable")
            .0
    }

    #[test]
    fn subscribe_publish_flow() {
        let mut cli = Cli::with_shards(EngineKind::Dynamic, 0);
        let r = run(&mut cli, "sub movie = 'up' AND price <= 10");
        assert_eq!(r, "subscribed s0");
        let r = run(&mut cli, "pub {movie: 'up', price: 8}");
        assert_eq!(r, "matched: s0");
        let r = run(&mut cli, "pub {movie: 'up', price: 80}");
        assert_eq!(r, "matched: (none)");
        let r = run(&mut cli, "unsub s0");
        assert_eq!(r, "unsubscribed s0");
        let r = run(&mut cli, "pub {movie: 'up', price: 8}");
        assert_eq!(r, "matched: (none)");
    }

    #[test]
    fn batched_publish_flow() {
        let mut cli = Cli::with_shards(EngineKind::Dynamic, 0);
        assert_eq!(run(&mut cli, "sub price <= 10"), "subscribed s0");
        assert_eq!(
            run(&mut cli, "sub from = 'NYC' OR from = 'EWR'"),
            "subscribed d0 (2 disjuncts)"
        );
        let r = run(
            &mut cli,
            "pub {price: 8}; {price: 80}; {from: 'EWR', price: 3}",
        );
        assert_eq!(
            r,
            "[0] matched: s0\n[1] matched: (none)\n[2] matched: s0, d0"
        );
        // A parse error anywhere in the batch rejects the whole batch.
        assert!(run(&mut cli, "pub {a: 1}; {broken").starts_with("error:"));
        assert!(run(&mut cli, "pub ; ;").starts_with("error:"));
    }

    #[test]
    fn batched_publish_flow_durable() {
        let dir = temp_dir("batch-pub");
        let mut cli = durable_cli(&dir);
        assert_eq!(run(&mut cli, "sub price <= 10"), "subscribed s0");
        let r = run(&mut cli, "pub {price: 8}; {price: 80}");
        assert_eq!(r, "[0] matched: s0\n[1] matched: (none)");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dnf_flow() {
        let mut cli = Cli::with_shards(EngineKind::Dynamic, 0);
        let r = run(&mut cli, "sub from = 'NYC' OR from = 'EWR'");
        assert_eq!(r, "subscribed d0 (2 disjuncts)");
        let r = run(&mut cli, "pub {from: 'EWR'}");
        assert_eq!(r, "matched: d0");
        let r = run(&mut cli, "unsub d0");
        assert_eq!(r, "unsubscribed d0");
        let r = run(&mut cli, "pub {from: 'EWR'}");
        assert_eq!(r, "matched: (none)");
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut cli = Cli::with_shards(EngineKind::Counting, 0);
        assert!(run(&mut cli, "sub price <").starts_with("error:"));
        assert!(run(&mut cli, "pub {broken").starts_with("error:"));
        assert!(run(&mut cli, "unsub s99").starts_with("error:"));
        assert!(run(&mut cli, "bogus").starts_with("error:"));
        // Still functional afterwards.
        assert_eq!(run(&mut cli, "sub a = 1"), "subscribed s0");
    }

    #[test]
    fn tick_and_stats() {
        let mut cli = Cli::with_shards(EngineKind::Dynamic, 0);
        run(&mut cli, "sub a = 1");
        run(&mut cli, "pub {a: 1}");
        let r = run(&mut cli, "tick 3");
        assert!(r.contains("now t3"), "{r}");
        let r = run(&mut cli, "stats");
        assert!(r.contains("subscriptions 1"), "{r}");
        assert!(r.contains("matches 1"), "{r}");
        assert!(r.contains("phase1/event"), "{r}");
        assert!(r.contains("phase2/event"), "{r}");
    }

    #[test]
    fn sharded_stats_report_per_shard_counts() {
        let mut cli = Cli::with_shards(EngineKind::Dynamic, 3);
        for i in 0..9 {
            run(&mut cli, &format!("sub a = {i}"));
        }
        run(&mut cli, "pub {a: 4}");
        let r = run(&mut cli, "stats");
        assert!(r.contains("engine sharded"), "{r}");
        assert!(r.contains("subscriptions 9"), "{r}");
        assert!(r.contains("shards 3"), "{r}");
        assert!(r.contains("per-shard subscriptions ["), "{r}");
        assert!(r.contains("matches 1"), "{r}");
    }

    #[test]
    fn stats_json_and_metrics_flags() {
        let mut cli = Cli::with_shards(EngineKind::Counting, 0);
        run(&mut cli, "sub a = 1");
        run(&mut cli, "pub {a: 1}");
        let r = run(&mut cli, "stats --json");
        assert!(r.starts_with("{\"checks\":"), "{r}");
        assert!(r.contains("\"engine\":\"counting\""), "{r}");
        assert!(r.contains("\"events\":1"), "{r}");
        assert!(r.ends_with("\"subscriptions\":1}"), "{r}");
        let r = run(&mut cli, "stats --metrics");
        assert!(r.contains("metrics"), "{r}");
        let r = run(&mut cli, "stats --json --metrics");
        assert!(r.contains("\"metrics\":{\"counters\":{"), "{r}");
        // With the feature on the snapshot must carry the published event.
        if pubsub_types::metrics::enabled() {
            assert!(r.contains("\"broker.publishes\":"), "{r}");
        }
        assert!(run(&mut cli, "stats --bogus").starts_with("error:"));
    }

    #[test]
    fn sharded_stats_report_robustness() {
        let mut cli = Cli::with_options(EngineKind::Counting, 2, Backpressure::Shed);
        run(&mut cli, "sub a = 1");
        let r = run(&mut cli, "stats");
        assert!(r.contains("robustness: panics 0"), "{r}");
        let r = run(&mut cli, "stats --json");
        assert!(r.contains("\"robustness\":{\"degraded_matches\":0"), "{r}");
        assert!(r.contains("\"worker_panics\":0}"), "{r}");
        // Key order stays ascending around the new key.
        let robustness = r.find("\"robustness\"").unwrap();
        assert!(r.find("\"phase2_nanos\"").unwrap() < robustness, "{r}");
        assert!(robustness < r.find("\"shards\"").unwrap(), "{r}");
        // Unsharded brokers have no robustness section.
        let mut plain = Cli::with_shards(EngineKind::Counting, 0);
        assert!(!run(&mut plain, "stats --json").contains("robustness"));
    }

    #[test]
    fn chaos_command_status_arm_clear() {
        let mut cli = Cli::with_shards(EngineKind::Counting, 2);
        let r = run(&mut cli, "chaos");
        assert!(r.contains("fault injection"), "{r}");
        assert_eq!(run(&mut cli, "chaos clear"), "cleared all fault rules");
        assert!(run(&mut cli, "chaos bogus").starts_with("error:"));
        assert!(run(&mut cli, "chaos arm").starts_with("error:"));
        if !faults::enabled() {
            // Arming requires the compiled-in registry.
            let r = run(&mut cli, "chaos arm p panic nth=1");
            assert!(r.starts_with("error:"), "{r}");
            return;
        }
        run(&mut cli, "sub a = 1");
        let r = run(&mut cli, "chaos arm core.sharded.worker.match panic nth=1");
        assert!(r.starts_with("armed Panic"), "{r}");
        // The armed panic fires at some match fan-out (this publish, unless
        // a concurrently running test consumed the one-shot rule first);
        // either way the supervised engine answers exactly.
        assert_eq!(run(&mut cli, "pub {a: 1}"), "matched: s0");
        let r = run(&mut cli, "stats --json");
        assert!(r.contains("\"robustness\":{"), "{r}");
        run(&mut cli, "chaos clear");
        assert_eq!(run(&mut cli, "pub {a: 1}"), "matched: s0");
    }

    #[test]
    fn chaos_parsers_reject_garbage() {
        assert!(parse_fault_action("panic").is_ok());
        assert!(parse_fault_action("corrupt").is_ok());
        assert_eq!(parse_fault_action("fail"), Ok(FaultAction::Fail));
        assert_eq!(parse_fault_action("delay=25"), Ok(FaultAction::Delay(25)));
        assert!(parse_fault_action("explode").is_err());
        assert_eq!(parse_fault_schedule("nth=3"), Ok(Schedule::Nth(3)));
        assert_eq!(parse_fault_schedule("every=2"), Ok(Schedule::EveryNth(2)));
        assert_eq!(
            parse_fault_schedule("seed=42,1000"),
            Ok(Schedule::Seeded {
                seed: 42,
                prob_ppm: 1000
            })
        );
        assert!(parse_fault_schedule("sometimes").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut cli = Cli::with_shards(EngineKind::Dynamic, 0);
        assert_eq!(run(&mut cli, "# a comment"), "");
        assert_eq!(run(&mut cli, "   "), "");
        assert!(cli.execute("quit").is_none());
    }

    #[test]
    fn durable_state_survives_reopen() {
        let dir = temp_dir("reopen");
        let mut cli = durable_cli(&dir);
        assert_eq!(
            run(&mut cli, "sub movie = 'up' AND price <= 10"),
            "subscribed s0"
        );
        assert_eq!(run(&mut cli, "pub {movie: 'up', price: 8}"), "matched: s0");
        run(&mut cli, "tick 2");
        drop(cli);

        // A fresh process over the same directory sees the same broker.
        let mut cli = durable_cli(&dir);
        assert_eq!(run(&mut cli, "pub {movie: 'up', price: 8}"), "matched: s0");
        let r = run(&mut cli, "tick");
        assert!(r.contains("now t3"), "clock recovered: {r}");
        assert_eq!(run(&mut cli, "unsub s0"), "unsubscribed s0");
        drop(cli);

        let mut cli = durable_cli(&dir);
        assert_eq!(
            run(&mut cli, "pub {movie: 'up', price: 8}"),
            "matched: (none)"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_rejects_dnf() {
        let dir = temp_dir("no-dnf");
        let mut cli = durable_cli(&dir);
        let r = run(&mut cli, "sub a = 1 OR b = 2");
        assert!(r.starts_with("error:") && r.contains("conjunctive"), "{r}");
        assert!(run(&mut cli, "unsub d0").starts_with("error:"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_stats_block() {
        let dir = temp_dir("stats");
        let mut cli = durable_cli(&dir);
        run(&mut cli, "sub a = 1");
        run(&mut cli, "pub {a: 1}");
        let r = run(&mut cli, "stats");
        assert!(r.contains("(durable)"), "{r}");
        assert!(r.contains("durability: dir"), "{r}");
        assert!(r.contains("degraded no  role leader"), "{r}");
        assert!(r.contains("recovery: replayed 0"), "{r}");
        // The durable backend publishes through the RCU snapshot: the
        // matching work must show up in the aggregate even though the shard
        // engines saw no reads, and the rcu block must be reported.
        assert!(r.contains("events 1"), "{r}");
        assert!(r.contains("matches 1"), "{r}");
        assert!(r.contains("rcu: mode rcu  flips"), "{r}");
        let r = run(&mut cli, "stats --json");
        assert!(r.starts_with("{\"checks\":"), "{r}");
        assert!(r.contains("\"durability\":{\"degraded\":false"), "{r}");
        assert!(
            r.contains("\"follower\":false,\"next_lsn\":2"),
            "two ops logged: {r}"
        );
        assert!(r.contains("\"recovery\":{\"bytes_abandoned\":0"), "{r}");
        assert!(r.contains("\"events\":1"), "{r}");
        assert!(r.contains("\"rcu\":{\"active_readers\":0"), "{r}");
        assert!(r.contains("\"mode\":\"rcu\""), "{r}");
        assert!(r.contains("\"retired\":0"), "{r}");
        assert!(r.ends_with("\"subscriptions\":1}"), "{r}");
        // Key order stays ascending around the durability and rcu blocks.
        assert!(r.find("\"checks\"").unwrap() < r.find("\"durability\"").unwrap());
        assert!(r.find("\"durability\"").unwrap() < r.find("\"engine\"").unwrap());
        assert!(r.find("\"phase2_nanos\"").unwrap() < r.find("\"rcu\"").unwrap());
        assert!(r.find("\"rcu\"").unwrap() < r.find("\"shards\"").unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_follow_refuses_foreign_history() {
        // Satellite guard: a WAL directory with real (non-follower) durable
        // history must not be followed into — that would interleave the
        // local log with the leader's. The refusal is typed, not a panic.
        let dir = temp_dir("foreign");
        let mut cli = durable_cli(&dir);
        run(&mut cli, "sub a = 1");
        drop(cli);
        let err = match open_follower_broker(EngineKind::Dynamic, 2, &dir) {
            Err(e) => e,
            Ok(_) => panic!("foreign history must be refused"),
        };
        assert!(err.contains("non-follower durable history"), "{err}");

        // A fresh directory opens fine and is branded; reopening the same
        // (now follower-marked) directory also works.
        let fresh = temp_dir("follower-home");
        let (broker, _) = open_follower_broker(EngineKind::Dynamic, 2, &fresh).unwrap();
        assert!(broker.is_follower());
        assert!(broker.durability().unwrap().follower);
        drop(broker);
        let (broker, _) = open_follower_broker(EngineKind::Dynamic, 2, &fresh).unwrap();
        assert!(broker.is_follower());
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&fresh).unwrap();
    }

    #[test]
    fn repl_status_line_renders_both_roles() {
        let mut status = pubsub_net::ReplStatus {
            next_lsn: 42,
            leader_next_lsn: Some(44),
            lag: Some(2),
            connected: true,
            stale: false,
            millis_since_contact: Some(12),
            connects: 3,
            promoted: false,
        };
        assert_eq!(
            repl_status_line(&status),
            "replication: role follower  connected yes  stale no  applied 42  leader 44  \
             lag 2  last-contact 12ms  connects 3"
        );
        status.promoted = true;
        status.leader_next_lsn = None;
        status.lag = None;
        status.millis_since_contact = None;
        assert_eq!(
            repl_status_line(&status),
            "replication: role leader(promoted)  connected yes  stale no  applied 42  \
             leader ?  lag ?  last-contact never  connects 3"
        );
    }

    #[test]
    fn wal_command_verify_dump_snapshot() {
        let dir = temp_dir("walcmd");
        let mut cli = durable_cli(&dir);
        run(&mut cli, "sub a = 1");
        run(&mut cli, "sub b = 2");
        run(&mut cli, "tick");
        let r = run(&mut cli, "wal verify");
        assert!(r.contains("healthy"), "{r}");
        // Two interns + two subscribes + one advance.
        assert!(r.contains("5 record(s)"), "{r}");
        let r = run(&mut cli, "wal dump");
        assert!(r.contains("subscribe"), "{r}");
        assert!(r.contains("advance"), "{r}");
        let r = run(&mut cli, "wal snapshot");
        assert!(r.starts_with("snapshot written:"), "{r}");
        let r = run(&mut cli, "wal verify");
        assert!(r.contains("1 snapshot(s)"), "{r}");
        // Guard rails.
        assert!(run(&mut cli, "wal").starts_with("error:"));
        assert!(run(&mut cli, "wal bogus").starts_with("error:"));
        assert!(
            run(&mut cli, "wal compact").starts_with("error:"),
            "needs dir"
        );
        let own = format!("wal compact {}", dir.display());
        assert!(
            run(&mut cli, &own).contains("holds that directory"),
            "guarded"
        );
        drop(cli);
        // Offline compact over the closed directory works.
        let mut offline = Cli::with_shards(EngineKind::Counting, 0);
        let r = run(&mut offline, &own);
        assert!(r.starts_with("compacted"), "{r}");
        assert!(
            run(&mut offline, "wal verify").starts_with("error:"),
            "no dir"
        );
        assert!(
            run(&mut offline, "wal snapshot").starts_with("error:"),
            "not durable"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
