//! Multi-attribute hash tables (paper §3.1).
//!
//! A table with schema `A` maps the tuple of an event's values on `A` to the
//! cluster list of the access predicate "those equality pairs". An event
//! probes a table only when `A` is included in the event's schema; a probe
//! is one hash lookup regardless of table size.

use crate::cluster::ClusterList;
use pubsub_types::{AttrId, AttrSet, Event, FxHashMap, SubscriptionId, Value};

/// One multi-attribute hashing structure.
#[derive(Debug)]
pub struct MultiAttrTable {
    schema: AttrSet,
    /// The schema attributes in ascending order — the tuple layout.
    attrs: Vec<AttrId>,
    map: FxHashMap<Box<[Value]>, ClusterList>,
    population: usize,
}

impl MultiAttrTable {
    /// Creates an empty table over `schema`.
    pub fn new(schema: AttrSet) -> Self {
        let attrs = schema.to_sorted_vec();
        assert!(!attrs.is_empty(), "table schema cannot be empty");
        Self {
            schema,
            attrs,
            map: FxHashMap::default(),
            population: 0,
        }
    }

    /// The table's schema.
    #[inline]
    pub fn schema(&self) -> &AttrSet {
        &self.schema
    }

    /// The schema attributes in tuple order.
    #[inline]
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Subscriptions stored in the table (`|H|`, the table benefit metric of
    /// paper §4).
    #[inline]
    pub fn population(&self) -> usize {
        self.population
    }

    /// Number of distinct access predicates (hash entries).
    pub fn entry_count(&self) -> usize {
        self.map.len()
    }

    /// Builds the value tuple of a subscription's equality pairs for this
    /// table, or `None` if the pairs do not cover the schema. `pairs` must be
    /// sorted by attribute (as [`pubsub_types::Subscription`] guarantees).
    pub fn tuple_for(&self, pairs: &[(AttrId, Value)]) -> Option<Box<[Value]>> {
        let mut tuple = Vec::with_capacity(self.attrs.len());
        for &a in &self.attrs {
            let v = pairs.iter().find(|&&(pa, _)| pa == a)?.1;
            tuple.push(v);
        }
        Some(tuple.into_boxed_slice())
    }

    /// Inserts a subscription under `tuple` with the given remaining-bit
    /// references; returns `(width, slot)`.
    pub fn insert(
        &mut self,
        tuple: Box<[Value]>,
        id: SubscriptionId,
        bit_refs: &[u32],
    ) -> (usize, usize) {
        self.population += 1;
        self.map.entry(tuple).or_default().insert(id, bit_refs)
    }

    /// Removes the subscription at `(width, slot)` of the `tuple` entry;
    /// returns the subscription that moved into the vacated slot, if any.
    pub fn remove(&mut self, tuple: &[Value], width: usize, slot: usize) -> Option<SubscriptionId> {
        let list = self.map.get_mut(tuple).expect("tuple entry exists");
        let moved = list.swap_remove(width, slot);
        if list.is_empty() {
            self.map.remove(tuple);
        }
        self.population -= 1;
        moved
    }

    /// Probes the table with an event. Returns the cluster list of the access
    /// predicate the event satisfies, if any. `buf` is a reusable tuple
    /// buffer (cleared here).
    ///
    /// Returns `None` also when the event lacks one of the schema attributes
    /// — the caller usually pre-filters by schema inclusion, but probing is
    /// safe regardless.
    pub fn probe<'a>(&'a self, event: &Event, buf: &mut Vec<Value>) -> Option<&'a ClusterList> {
        buf.clear();
        for &a in &self.attrs {
            buf.push(event.value(a)?);
        }
        self.map.get(buf.as_slice())
    }

    /// The cluster list stored under an exact access tuple, if any.
    pub fn entry_list(&self, tuple: &[Value]) -> Option<&ClusterList> {
        self.map.get(tuple)
    }

    /// Like [`MultiAttrTable::probe`], but reads attribute values from a
    /// dense per-event view (`view[attr.index()]`) instead of binary-searching
    /// the event pairs — the clustered matcher probes every table per event,
    /// so this constant matters.
    pub fn probe_view<'a>(
        &'a self,
        view: &[Option<Value>],
        buf: &mut Vec<Value>,
    ) -> Option<&'a ClusterList> {
        buf.clear();
        for &a in &self.attrs {
            buf.push((*view.get(a.index())?)?);
        }
        self.map.get(buf.as_slice())
    }

    /// Iterates over `(tuple, cluster list)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (&[Value], &ClusterList)> {
        self.map.iter().map(|(t, l)| (t.as_ref(), l))
    }

    /// Collects every subscription id in the table (used when the table is
    /// deleted and its population redistributed).
    pub fn all_subscriptions(&self) -> Vec<SubscriptionId> {
        let mut out = Vec::with_capacity(self.population);
        for list in self.map.values() {
            for cluster in list.iter() {
                out.extend_from_slice(cluster.subscriptions());
            }
        }
        out
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        let entries: usize = self
            .map
            .iter()
            .map(|(t, l)| t.len() * std::mem::size_of::<Value>() + 48 + l.heap_bytes())
            .sum();
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn sid(i: u32) -> SubscriptionId {
        SubscriptionId(i)
    }

    fn schema(ids: &[u32]) -> AttrSet {
        ids.iter().map(|&i| a(i)).collect()
    }

    #[test]
    fn tuple_layout_follows_sorted_attrs() {
        let t = MultiAttrTable::new(schema(&[3, 1]));
        assert_eq!(t.attrs(), &[a(1), a(3)]);
        let pairs = [(a(1), Value::Int(10)), (a(3), Value::Int(30))];
        let tuple = t.tuple_for(&pairs).unwrap();
        assert_eq!(&*tuple, &[Value::Int(10), Value::Int(30)]);
        // Missing attribute → no tuple.
        assert!(t.tuple_for(&[(a(1), Value::Int(10))]).is_none());
    }

    #[test]
    fn probe_finds_matching_entry() {
        let mut t = MultiAttrTable::new(schema(&[0, 1]));
        let pairs = [(a(0), Value::Int(1)), (a(1), Value::Int(2))];
        let tuple = t.tuple_for(&pairs).unwrap();
        t.insert(tuple, sid(9), &[]);
        assert_eq!(t.population(), 1);
        assert_eq!(t.entry_count(), 1);

        let mut buf = Vec::new();
        let hit = Event::builder()
            .pair(a(0), 1i64)
            .pair(a(1), 2i64)
            .pair(a(2), 99i64)
            .build()
            .unwrap();
        let list = t.probe(&hit, &mut buf).expect("probe hits");
        assert_eq!(list.len(), 1);

        let wrong_value = Event::builder()
            .pair(a(0), 1i64)
            .pair(a(1), 3i64)
            .build()
            .unwrap();
        assert!(t.probe(&wrong_value, &mut buf).is_none());

        let missing_attr = Event::builder().pair(a(0), 1i64).build().unwrap();
        assert!(t.probe(&missing_attr, &mut buf).is_none());
    }

    #[test]
    fn remove_cleans_up_empty_entries() {
        let mut t = MultiAttrTable::new(schema(&[0]));
        let tuple = t.tuple_for(&[(a(0), Value::Int(5))]).unwrap();
        let (w, s) = t.insert(tuple.clone(), sid(1), &[7]);
        assert_eq!(t.remove(&tuple, w, s), None);
        assert_eq!(t.population(), 0);
        assert_eq!(t.entry_count(), 0);
    }

    #[test]
    fn all_subscriptions_enumerates_every_entry() {
        let mut t = MultiAttrTable::new(schema(&[0]));
        for i in 0..5u32 {
            let tuple = t.tuple_for(&[(a(0), Value::Int((i % 2) as i64))]).unwrap();
            t.insert(tuple, sid(i), &[i]);
        }
        let mut subs = t.all_subscriptions();
        subs.sort();
        assert_eq!(subs, (0..5).map(sid).collect::<Vec<_>>());
    }
}
