//! The common interface of all matching engines.

use pubsub_types::metrics::Histogram;
use pubsub_types::{Event, Subscription, SubscriptionId};

/// Phase-1 (predicate evaluation) latency per event, nanoseconds, all engines.
pub(crate) static PHASE1_NANOS: Histogram = Histogram::new("core.phase1_nanos");
/// Phase-2 (subscription matching) latency per event, nanoseconds, all engines.
pub(crate) static PHASE2_NANOS: Histogram = Histogram::new("core.phase2_nanos");

/// Counters every engine maintains; the per-phase timers reproduce the
/// paper's §6.2.1 breakdown (preprocessing 1.3 ms vs. matching 0.1 ms for
/// the dynamic algorithm at 6M subscriptions).
#[derive(Debug, Default, Clone, Copy)]
pub struct EngineStats {
    /// Events processed.
    pub events: u64,
    /// Nanoseconds spent in the predicate (bit-vector) phase.
    pub phase1_nanos: u64,
    /// Nanoseconds spent in the subscription-matching phase.
    pub phase2_nanos: u64,
    /// Subscriptions inspected by the second phase (the quantity the
    /// clustering cost model minimises).
    pub subscriptions_checked: u64,
    /// Total matches reported.
    pub matches: u64,
    /// Hash tables created by dynamic maintenance.
    pub tables_created: u64,
    /// Hash tables deleted by dynamic maintenance.
    pub tables_deleted: u64,
    /// Subscriptions moved between clusters by maintenance.
    pub subscription_moves: u64,
}

impl EngineStats {
    /// Resets every counter.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Mean subscriptions checked per event.
    pub fn checks_per_event(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.subscriptions_checked as f64 / self.events as f64
        }
    }
}

/// A content-based matching engine: phase 1 (predicate evaluation) plus an
/// algorithm-specific phase 2 (subscription matching).
pub trait MatchEngine {
    /// Short engine name as used in the paper's figures
    /// (`counting`, `propagation`, `propagation-wp`, `static`, `dynamic`).
    fn name(&self) -> &'static str;

    /// Registers a subscription under a caller-chosen unique id.
    fn insert(&mut self, id: SubscriptionId, sub: &Subscription);

    /// Unregisters a subscription previously inserted.
    ///
    /// # Panics
    /// Panics if `id` is unknown — the broker owns id lifecycle and a miss
    /// is a logic error, not a recoverable condition.
    fn remove(&mut self, id: SubscriptionId);

    /// Appends the ids of all subscriptions satisfied by `event` to `out`
    /// (no duplicates).
    ///
    /// # Ordering
    /// Single-threaded engines append in an engine-specific (but
    /// deterministic) order. [`crate::sharded::ShardedMatcher`] is the
    /// exception with a stronger contract: it sorts the merged result by
    /// [`SubscriptionId`] at the merge point, so its output is identical for
    /// every shard count. Callers that need a canonical order across engine
    /// kinds must sort; callers using the sharded engine get it for free.
    fn match_event(&mut self, event: &Event, out: &mut Vec<SubscriptionId>);

    /// Matches a batch of events, filling `out` with one result vector per
    /// event (parallel to `events`; existing inner vectors are reused).
    ///
    /// The default implementation loops over [`MatchEngine::match_event`];
    /// engines with cross-event amortisation opportunities (e.g. the sharded
    /// engine's fan-out/wakeup cost) override it.
    fn match_batch_into(&mut self, events: &[Event], out: &mut Vec<Vec<SubscriptionId>>) {
        out.resize_with(events.len(), Vec::new);
        out.truncate(events.len());
        for (event, dst) in events.iter().zip(out.iter_mut()) {
            dst.clear();
            self.match_event(event, dst);
        }
    }

    /// Number of registered subscriptions.
    fn len(&self) -> usize;

    /// True if no subscription is registered.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One-time hook after bulk loading. The static engine runs its
    /// cost-based optimization here; every other engine is a no-op.
    fn finalize(&mut self) {}

    /// Bulk-loads a recovered subscription set into an empty engine — the
    /// crash-recovery path of the durable broker, which replays a snapshot
    /// into fresh engines before applying the WAL tail.
    ///
    /// The default is insert-then-[`finalize`](MatchEngine::finalize), which
    /// every engine supports; engines with a cheaper bulk path (or ones that
    /// defer index construction, like the static engine's cost-based
    /// clustering) get it via the `finalize` call without further work.
    /// Implementations may assume the engine is empty.
    fn rebuild(&mut self, subs: &mut dyn Iterator<Item = (SubscriptionId, &Subscription)>) {
        for (id, sub) in subs {
            self.insert(id, sub);
        }
        self.finalize();
    }

    /// Performance counters.
    fn stats(&self) -> &EngineStats;

    /// Resets performance counters.
    fn reset_stats(&mut self);

    /// Approximate heap bytes held by the engine's data structures.
    fn heap_bytes(&self) -> usize;

    /// Per-shard subscription counts, for engines that partition their
    /// subscription set. `None` for unsharded engines.
    fn shard_subscription_counts(&self) -> Option<Vec<usize>> {
        None
    }

    /// Robustness counters, for engines with supervised fallible workers
    /// ([`crate::sharded::ShardedMatcher`]). `None` for engines that run in
    /// the caller's thread and cannot partially fail.
    fn shard_health(&self) -> Option<crate::sharded::ShardHealth> {
        None
    }
}

impl<T: MatchEngine + ?Sized> MatchEngine for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn insert(&mut self, id: SubscriptionId, sub: &Subscription) {
        (**self).insert(id, sub)
    }
    fn remove(&mut self, id: SubscriptionId) {
        (**self).remove(id)
    }
    fn match_event(&mut self, event: &Event, out: &mut Vec<SubscriptionId>) {
        (**self).match_event(event, out)
    }
    fn match_batch_into(&mut self, events: &[Event], out: &mut Vec<Vec<SubscriptionId>>) {
        (**self).match_batch_into(events, out)
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn finalize(&mut self) {
        (**self).finalize()
    }
    fn rebuild(&mut self, subs: &mut dyn Iterator<Item = (SubscriptionId, &Subscription)>) {
        (**self).rebuild(subs)
    }
    fn stats(&self) -> &EngineStats {
        (**self).stats()
    }
    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }
    fn heap_bytes(&self) -> usize {
        (**self).heap_bytes()
    }
    fn shard_subscription_counts(&self) -> Option<Vec<usize>> {
        (**self).shard_subscription_counts()
    }
    fn shard_health(&self) -> Option<crate::sharded::ShardHealth> {
        (**self).shard_health()
    }
}

/// Which engine to construct — the five contenders of the paper's §6 plus
/// the brute-force oracle used in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The counting algorithm (NEONet-style baseline).
    Counting,
    /// Propagation with single-equality access predicates, no prefetching.
    Propagation,
    /// Propagation with software prefetching (*propagation-wp*).
    PropagationPrefetch,
    /// Multi-attribute clustering computed once by the greedy cost-based
    /// optimizer at [`MatchEngine::finalize`] time.
    Static,
    /// Multi-attribute clustering maintained incrementally (paper §4).
    Dynamic,
    /// Linear-scan oracle (tests and tiny workloads only).
    BruteForce,
}

impl EngineKind {
    /// The engines compared in Figure 3(a), in the paper's order.
    pub const PAPER_ENGINES: [EngineKind; 5] = [
        EngineKind::Counting,
        EngineKind::Propagation,
        EngineKind::PropagationPrefetch,
        EngineKind::Static,
        EngineKind::Dynamic,
    ];

    /// Builds a fresh engine of this kind with default configuration.
    pub fn build(self) -> Box<dyn MatchEngine + Send> {
        match self {
            EngineKind::Counting => Box::new(crate::counting::CountingMatcher::new()),
            EngineKind::Propagation => Box::new(crate::propagation::PropagationMatcher::new(false)),
            EngineKind::PropagationPrefetch => {
                Box::new(crate::propagation::PropagationMatcher::new(true))
            }
            EngineKind::Static => Box::new(crate::clustered::ClusteredMatcher::new_static()),
            EngineKind::Dynamic => Box::new(crate::clustered::ClusteredMatcher::new_dynamic()),
            EngineKind::BruteForce => Box::new(crate::brute::BruteForceMatcher::new()),
        }
    }

    /// The figure label of the engine.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Counting => "counting",
            EngineKind::Propagation => "propagation",
            EngineKind::PropagationPrefetch => "propagation-wp",
            EngineKind::Static => "static",
            EngineKind::Dynamic => "dynamic",
            EngineKind::BruteForce => "brute-force",
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "counting" => EngineKind::Counting,
            "propagation" => EngineKind::Propagation,
            "propagation-wp" | "propagation_wp" | "propagation-prefetch" => {
                EngineKind::PropagationPrefetch
            }
            "static" => EngineKind::Static,
            "dynamic" => EngineKind::Dynamic,
            "brute-force" | "brute_force" | "brute" => EngineKind::BruteForce,
            other => return Err(format!("unknown engine kind: {other}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for kind in EngineKind::PAPER_ENGINES {
            let parsed: EngineKind = kind.label().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("nonsense".parse::<EngineKind>().is_err());
    }

    #[test]
    fn stats_checks_per_event() {
        let mut s = EngineStats::default();
        assert_eq!(s.checks_per_event(), 0.0);
        s.events = 4;
        s.subscriptions_checked = 10;
        assert_eq!(s.checks_per_event(), 2.5);
        s.reset();
        assert_eq!(s.events, 0);
    }
}
