//! Software prefetching.
//!
//! The paper's `cluster_matching` kernel issues assembly `prefetch`
//! instructions so cache lines of the column arrays arrive before they are
//! read (§2.2). On x86_64 we use the stable `_mm_prefetch` intrinsic, whose
//! semantics match the paper's non-binding prefetch; on other architectures
//! the call compiles to nothing (documented substitution in DESIGN.md §4 —
//! the *propagation* and *propagation-wp* engines then coincide).

/// Requests the cache line containing `r` to be loaded into all cache
/// levels. Non-binding: the CPU may ignore it; correctness never depends on
/// it.
#[inline(always)]
pub fn prefetch_read<T>(r: &T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        // SAFETY: `_mm_prefetch` performs no memory access visible to the
        // program; any pointer value is sound to pass.
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
            r as *const T as *const i8,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = r;
    }
}

/// Whether this build actually emits prefetch instructions.
pub const PREFETCH_AVAILABLE: bool = cfg!(target_arch = "x86_64");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_no_op_semantically() {
        let data = vec![1u32; 1024];
        prefetch_read(&data[0]);
        prefetch_read(&data[512]);
        assert_eq!(data[0], 1);
    }
}
