//! Epoch-protected pointer publication — a hand-rolled `arc-swap` with safe
//! reclamation, built only on `std` atomics (no new external deps, per the
//! in-tree `shims/` policy).
//!
//! [`RcuCell<T>`] holds one published `Arc<T>` behind an [`AtomicPtr`].
//! Readers call [`RcuCell::pin`], which announces the reader's epoch in a
//! per-thread slot and returns a guard dereferencing the snapshot **without
//! any refcount traffic or locks** — the entire read side is two `SeqCst`
//! atomic accesses (announce + load). Writers call [`RcuCell::publish`] to
//! swap in a new snapshot; the old one is *retired*, not freed, and is
//! reclaimed once every reader slot is idle or has announced a later epoch.
//!
//! # Protocol
//!
//! Global state: `epoch: AtomicU64` (starts at 1), `current: AtomicPtr<T>`
//! (an `Arc::into_raw` pointer), one epoch slot per (thread, cell) pair
//! (`u64::MAX` = idle), and a retired list of `(retire_epoch, ptr)` pairs.
//!
//! * **Reader pin:** `e ← epoch` (SeqCst), `slot ← e` (SeqCst), then
//!   `p ← current` (SeqCst). The guard hands out `&T`; dropping the
//!   outermost guard stores idle into the slot.
//! * **Writer publish:** `old ← current.swap(new)` (SeqCst), then
//!   `r ← epoch.fetch_add(1)` (SeqCst); push `(r, old)` onto the retired
//!   list and attempt reclamation.
//! * **Reclaim:** `(r, p)` may be freed when every slot is idle or announces
//!   an epoch **greater than** `r`.
//!
//! # Why this is safe
//!
//! All four accesses are `SeqCst`, so they embed into one total order. A
//! reader that obtained the *old* pointer performed its `current` load
//! before the writer's swap, hence before the writer's `fetch_add`, hence
//! its earlier slot store announced some `e ≤ r` — the slot blocks
//! reclamation of `(r, p)` until the reader unpins. Conversely a slot
//! announcing `e > r` read the epoch after the `fetch_add`, therefore loaded
//! `current` after the swap and cannot hold `p`. A stale announcement (a
//! thread descheduled between reading the epoch and storing the slot) can
//! only announce an epoch that is *too small*, which defers reclamation —
//! never a use-after-free. Nested pins on one thread keep the outermost
//! epoch announced, which covers every snapshot an inner pin could observe.

use pubsub_types::metrics::{Counter, Histogram};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// Readers active (non-idle epoch slots) observed at each reclamation scan.
static READERS_ACTIVE: Histogram = Histogram::new("rcu.readers_active");
/// Retired snapshots whose reclamation was deferred by an active reader
/// (counted once per snapshot per failed scan).
static RECLAIM_DEFERRED: Counter = Counter::new("rcu.reclaim_deferred");

/// Slot value meaning "no pin active on this thread".
const IDLE: u64 = u64::MAX;

/// Distinguishes cells within a thread's slot cache.
static CELL_IDS: AtomicU64 = AtomicU64::new(0);

/// One thread's epoch announcement for one cell. `epoch` is written by the
/// owning thread and read by writers during reclamation scans; `depth`
/// counts nested pins and is only ever touched by the owning thread.
struct ReaderSlot {
    epoch: AtomicU64,
    depth: AtomicUsize,
}

thread_local! {
    /// This thread's slots, keyed by cell id (linear scan: a thread touches
    /// very few distinct cells).
    static READER_SLOTS: RefCell<Vec<(u64, Arc<ReaderSlot>)>> =
        const { RefCell::new(Vec::new()) };
}

/// An epoch-protected published `Arc<T>` (see module docs for the protocol).
pub struct RcuCell<T: Send + Sync + 'static> {
    /// `Arc::into_raw` of the currently published snapshot.
    current: AtomicPtr<T>,
    /// Global epoch, bumped by every publish. Starts at 1 so epoch 0 never
    /// appears as a retire epoch.
    epoch: AtomicU64,
    /// Every reader slot ever registered for this cell (slots of dead
    /// threads stay idle forever and never block reclamation).
    slots: Mutex<Vec<Arc<ReaderSlot>>>,
    /// Retired snapshots awaiting quiescence: `(retire_epoch, ptr)`.
    retired: Mutex<Vec<(u64, *const T)>>,
    /// This cell's key in the per-thread slot caches.
    id: u64,
}

// The raw pointers inside `current`/`retired` are `Arc::into_raw` pointers
// whose ownership the cell manages under its own synchronisation; `T` itself
// is required to be `Send + Sync`.
unsafe impl<T: Send + Sync> Send for RcuCell<T> {}
unsafe impl<T: Send + Sync> Sync for RcuCell<T> {}

/// A pinned read of an [`RcuCell`]: dereferences to the snapshot that was
/// current at [`RcuCell::pin`] time. Holding the guard defers reclamation of
/// every snapshot retired since; drop it promptly.
pub struct RcuGuard<'a, T: Send + Sync + 'static> {
    ptr: *const T,
    slot: Arc<ReaderSlot>,
    _cell: PhantomData<&'a RcuCell<T>>,
}

impl<T: Send + Sync> Deref for RcuGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Safety: the pointed-to Arc cannot be reclaimed while this guard's
        // slot announces an epoch ≤ its retire epoch (module docs).
        unsafe { &*self.ptr }
    }
}

impl<T: Send + Sync> Drop for RcuGuard<'_, T> {
    fn drop(&mut self) {
        // Only the outermost guard of a nested pin clears the announcement.
        if self.slot.depth.fetch_sub(1, SeqCst) == 1 {
            self.slot.epoch.store(IDLE, SeqCst);
        }
    }
}

impl<T: Send + Sync + 'static> RcuCell<T> {
    /// Creates a cell publishing `initial`.
    pub fn new(initial: Arc<T>) -> Self {
        Self {
            current: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            epoch: AtomicU64::new(1),
            slots: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            id: CELL_IDS.fetch_add(1, SeqCst),
        }
    }

    /// This thread's slot for this cell, registering one on first use.
    fn reader_slot(&self) -> Arc<ReaderSlot> {
        READER_SLOTS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, slot)) = cache.iter().find(|(id, _)| *id == self.id) {
                return slot.clone();
            }
            let slot = Arc::new(ReaderSlot {
                epoch: AtomicU64::new(IDLE),
                depth: AtomicUsize::new(0),
            });
            self.slots
                .lock()
                .expect("rcu slots poisoned")
                .push(slot.clone());
            cache.push((self.id, slot.clone()));
            slot
        })
    }

    /// Pins the current snapshot for reading. Never blocks: the hot path is
    /// one thread-local lookup plus two `SeqCst` atomic accesses.
    pub fn pin(&self) -> RcuGuard<'_, T> {
        let slot = self.reader_slot();
        if slot.depth.load(SeqCst) == 0 {
            // Announce-then-load; see module docs for the ordering argument.
            slot.epoch.store(self.epoch.load(SeqCst), SeqCst);
        }
        slot.depth.fetch_add(1, SeqCst);
        let ptr = self.current.load(SeqCst) as *const T;
        RcuGuard {
            ptr,
            slot,
            _cell: PhantomData,
        }
    }

    /// Publishes `next` as the new snapshot, retiring the previous one and
    /// attempting to reclaim any retired snapshot whose readers have passed.
    pub fn publish(&self, next: Arc<T>) {
        let new_ptr = Arc::into_raw(next) as *mut T;
        let old = self.current.swap(new_ptr, SeqCst) as *const T;
        let retire_epoch = self.epoch.fetch_add(1, SeqCst);
        self.retired
            .lock()
            .expect("rcu retired poisoned")
            .push((retire_epoch, old));
        self.reclaim();
    }

    /// Scans the reader slots and frees every retired snapshot whose retire
    /// epoch precedes all active readers. Called by [`RcuCell::publish`];
    /// callable directly to drain garbage during quiet periods. Returns the
    /// number of snapshots freed.
    pub fn reclaim(&self) -> usize {
        let mut retired = self.retired.lock().expect("rcu retired poisoned");
        if retired.is_empty() {
            return 0;
        }
        // Minimum epoch announced by any active reader; `(r, p)` is
        // reclaimable iff `r < min_active` (every active reader announced a
        // later epoch and thus loaded a later snapshot).
        let mut min_active = u64::MAX;
        let mut active = 0u64;
        for slot in self.slots.lock().expect("rcu slots poisoned").iter() {
            let e = slot.epoch.load(SeqCst);
            if e != IDLE {
                active += 1;
                min_active = min_active.min(e);
            }
        }
        READERS_ACTIVE.record(active);
        let mut freed = 0usize;
        retired.retain(|&(r, p)| {
            if r < min_active {
                // Safety: quiescent per the protocol; pointer came from
                // Arc::into_raw in publish/new.
                drop(unsafe { Arc::from_raw(p) });
                freed += 1;
                false
            } else {
                true
            }
        });
        RECLAIM_DEFERRED.add(retired.len() as u64);
        freed
    }

    /// Number of retired snapshots still awaiting reclamation.
    pub fn retired_len(&self) -> usize {
        self.retired.lock().expect("rcu retired poisoned").len()
    }

    /// Number of reader slots currently announcing an epoch (pinned now).
    pub fn active_readers(&self) -> usize {
        self.slots
            .lock()
            .expect("rcu slots poisoned")
            .iter()
            .filter(|s| s.epoch.load(SeqCst) != IDLE)
            .count()
    }

    /// The current publish epoch (1 + number of publishes so far).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(SeqCst)
    }
}

impl<T: Send + Sync + 'static> Drop for RcuCell<T> {
    fn drop(&mut self) {
        // Exclusive access: no guards can outlive the cell (they borrow it).
        let current = *self.current.get_mut() as *const T;
        // Safety: both pointers came from Arc::into_raw and are owned here.
        drop(unsafe { Arc::from_raw(current) });
        for (_, p) in self
            .retired
            .get_mut()
            .expect("rcu retired poisoned")
            .drain(..)
        {
            drop(unsafe { Arc::from_raw(p) });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts drops, so tests can observe reclamation directly.
    struct Probe {
        value: u64,
        drops: Arc<AtomicUsize>,
    }

    impl Drop for Probe {
        fn drop(&mut self) {
            self.drops.fetch_add(1, SeqCst);
        }
    }

    fn probe(value: u64, drops: &Arc<AtomicUsize>) -> Arc<Probe> {
        Arc::new(Probe {
            value,
            drops: drops.clone(),
        })
    }

    #[test]
    fn pin_reads_latest_snapshot() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = RcuCell::new(probe(1, &drops));
        assert_eq!(cell.pin().value, 1);
        cell.publish(probe(2, &drops));
        assert_eq!(cell.pin().value, 2);
    }

    #[test]
    fn unpinned_retirees_are_reclaimed_immediately() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = RcuCell::new(probe(1, &drops));
        for v in 2..10u64 {
            cell.publish(probe(v, &drops));
        }
        assert_eq!(cell.retired_len(), 0, "no readers → no deferred garbage");
        assert_eq!(drops.load(SeqCst), 8, "all eight retirees freed");
    }

    #[test]
    fn pinned_snapshot_survives_publish() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = RcuCell::new(probe(1, &drops));
        let guard = cell.pin();
        cell.publish(probe(2, &drops));
        cell.publish(probe(3, &drops));
        assert_eq!(guard.value, 1, "pinned read is immutable");
        assert_eq!(drops.load(SeqCst), 0, "retirees deferred while pinned");
        assert!(cell.retired_len() >= 1);
        drop(guard);
        cell.reclaim();
        assert_eq!(cell.retired_len(), 0);
        assert_eq!(drops.load(SeqCst), 2);
    }

    #[test]
    fn nested_pins_keep_the_outer_epoch() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = RcuCell::new(probe(1, &drops));
        let outer = cell.pin();
        cell.publish(probe(2, &drops));
        {
            let inner = cell.pin();
            assert_eq!(inner.value, 2, "inner pin sees the newest snapshot");
            // Inner guard drops here; the outer announcement must persist.
        }
        cell.publish(probe(3, &drops));
        cell.reclaim();
        assert_eq!(
            drops.load(SeqCst),
            0,
            "outer pin still blocks reclamation after inner unpin"
        );
        assert_eq!(outer.value, 1);
        drop(outer);
        cell.reclaim();
        assert_eq!(drops.load(SeqCst), 2);
    }

    #[test]
    fn drop_frees_current_and_retired() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let cell = RcuCell::new(probe(1, &drops));
            let guard = cell.pin();
            cell.publish(probe(2, &drops));
            assert_eq!(guard.value, 1);
            drop(guard);
            // Deliberately no reclaim(): Drop must free the garbage too.
        }
        assert_eq!(drops.load(SeqCst), 2, "current + retired both freed");
    }

    #[test]
    fn concurrent_readers_never_see_torn_state() {
        let drops = Arc::new(AtomicUsize::new(0));
        let cell = Arc::new(RcuCell::new(probe(0, &drops)));
        let stop = Arc::new(AtomicUsize::new(0));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let cell = cell.clone();
            let stop = stop.clone();
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while stop.load(SeqCst) == 0 {
                    let v = cell.pin().value;
                    assert!(v >= last, "snapshots move forward only");
                    last = v;
                }
            }));
        }
        for v in 1..=500u64 {
            cell.publish(probe(v, &drops));
        }
        stop.store(1, SeqCst);
        for r in readers {
            r.join().unwrap();
        }
        cell.reclaim();
        assert_eq!(cell.retired_len(), 0, "quiesced: all garbage reclaimed");
        assert_eq!(drops.load(SeqCst), 500);
        assert_eq!(cell.epoch(), 501);
    }
}
