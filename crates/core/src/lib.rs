//! The matching engines of `fastpubsub` — the primary contribution of the
//! SIGMOD 2001 paper.
//!
//! Five engines share the predicate phase of [`pubsub_index`] and differ in
//! how they map satisfied predicates to candidate subscriptions:
//!
//! * [`counting::CountingMatcher`] — the per-subscription hit-counter
//!   baseline (§5).
//! * [`propagation::PropagationMatcher`] — single-equality access predicates
//!   over columnwise clusters, with optional software prefetching (§2.2).
//! * [`clustered::ClusteredMatcher`] — multi-attribute hash tables chosen by
//!   the cost-based greedy optimizer (static, §3) or maintained online
//!   (dynamic, §4).
//! * [`brute::BruteForceMatcher`] — the linear-scan oracle used in tests.
//! * [`sharded::ShardedMatcher`] — a parallel layer partitioning the
//!   subscription set across `N` worker threads, each running a complete
//!   engine of any of the kinds above.
//!
//! All implement [`MatchEngine`]; [`EngineKind`] builds them by name.
//!
//! For shared read-mostly deployments, [`view::MatchView`] exposes the same
//! matching through `&self` with caller-owned scratch, and [`rcu::RcuCell`]
//! provides the epoch-protected snapshot publication the broker's lock-free
//! publish path is built on.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod brute;
pub mod cluster;
pub mod clustered;
pub mod counting;
pub mod engine;
pub mod prefetch;
pub mod propagation;
pub mod rcu;
pub mod sharded;
pub mod tables;
pub mod view;

pub use brute::BruteForceMatcher;
pub use cluster::{Cluster, ClusterList, LOOKAHEAD, MAX_PREFETCH_COLS, UNFOLD};
pub use clustered::{ClusteredMatcher, DynamicConfig};
pub use counting::CountingMatcher;
pub use engine::{EngineKind, EngineStats, MatchEngine};
pub use propagation::PropagationMatcher;
pub use rcu::{RcuCell, RcuGuard};
pub use sharded::{
    default_shards, Backpressure, MatchReport, QuarantinedEvent, ShardHealth, ShardedConfig,
    ShardedMatcher, FAULT_SPAWN, FAULT_WORKER_MATCH, FAULT_WORKER_OP,
};
pub use tables::MultiAttrTable;
pub use view::{build_frozen, MatchView, SnapshotEngine, ViewScratch};
