//! Columnwise subscription clusters — the cache-conscious second-phase data
//! structure of paper §2.2 (Figure 1).
//!
//! A cluster groups subscriptions with the same *access predicate* and the
//! same number of remaining predicates `n`. It stores `n` column arrays of
//! predicate bit-vector references plus one array of subscription ids:
//! `cols[i][j]` is the bit index of the `i`-th remaining predicate of the
//! subscription at slot `j`. A subscription matches iff all its referenced
//! bits are 1.
//!
//! The match loop is the paper's `cluster_matching` kernel: columnwise
//! storage (so a selective first column skips whole cache lines of the
//! later columns), an `UNFOLD`-chunked loop, and `_mm_prefetch` issued
//! `LOOKAHEAD` entries ahead so lines arrive while earlier entries are being
//! tested. Loops are specialised per column count (the paper generates one
//! method per size up to ten, plus a generic fallback) via const generics.

use crate::prefetch::prefetch_read;
use pubsub_index::PredicateBitVec;
use pubsub_types::metrics::Counter;
use pubsub_types::SubscriptionId;

/// Candidate subscriptions inspected by the columnwise kernels.
static CANDIDATES: Counter = Counter::new("core.cluster.candidates");
/// Subscriptions the kernels emitted as matches.
static MATCHES: Counter = Counter::new("core.cluster.matches");
/// Software prefetches issued by the `-wp` kernels.
static PREFETCHES: Counter = Counter::new("core.cluster.prefetches_issued");

/// Entries per inner chunk: one 64-byte cache line of `u32` bit references.
pub const UNFOLD: usize = 16;

/// How far ahead (in entries) prefetches are issued — two chunks, so a line
/// is requested roughly one chunk-processing time before it is read.
pub const LOOKAHEAD: usize = 2 * UNFOLD;

/// Columns beyond this many are never prefetched: prefetch slots compete and
/// rarely-read far columns would evict useful requests (paper §2.2, "for
/// larger numbers of predicates it does not pay to prefetch all arrays").
pub const MAX_PREFETCH_COLS: usize = 4;

/// A columnwise cluster of subscriptions with `n` remaining predicates.
#[derive(Debug, Default)]
pub struct Cluster {
    cols: Vec<Vec<u32>>,
    subs: Vec<SubscriptionId>,
}

impl Cluster {
    /// Creates an empty cluster for subscriptions with `n` remaining
    /// predicates.
    pub fn new(n: usize) -> Self {
        Self {
            cols: (0..n).map(|_| Vec::new()).collect(),
            subs: Vec::new(),
        }
    }

    /// Number of remaining predicates per subscription.
    #[inline]
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Number of subscriptions in the cluster.
    #[inline]
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True if the cluster holds no subscription.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// The subscription ids, by slot.
    pub fn subscriptions(&self) -> &[SubscriptionId] {
        &self.subs
    }

    /// Inserts a subscription with the given remaining-predicate bit
    /// references (must equal [`Cluster::width`]); returns its slot.
    pub fn insert(&mut self, id: SubscriptionId, bit_refs: &[u32]) -> usize {
        assert_eq!(bit_refs.len(), self.width(), "wrong arity for cluster");
        for (col, &b) in self.cols.iter_mut().zip(bit_refs) {
            col.push(b);
        }
        self.subs.push(id);
        self.subs.len() - 1
    }

    /// Removes the subscription at `slot` by swapping the last one in.
    /// Returns the id that moved into `slot`, if any — the caller must update
    /// that subscription's recorded location.
    pub fn swap_remove(&mut self, slot: usize) -> Option<SubscriptionId> {
        for col in &mut self.cols {
            col.swap_remove(slot);
        }
        self.subs.swap_remove(slot);
        self.subs.get(slot).copied()
    }

    /// The bit references of the subscription at `slot` (one per column);
    /// used when relocating subscriptions between clusters.
    pub fn bit_refs_at(&self, slot: usize) -> Vec<u32> {
        self.cols.iter().map(|c| c[slot]).collect()
    }

    /// Appends the ids of all subscriptions whose every referenced bit is set.
    ///
    /// `PF` selects the prefetching variant (the paper's *propagation-wp*).
    /// Returns the number of subscriptions inspected (for the cost
    /// experiments).
    pub fn match_into<const PF: bool>(
        &self,
        bits: &PredicateBitVec,
        out: &mut Vec<SubscriptionId>,
    ) -> usize {
        let before = out.len();
        let checked = self.match_dispatch::<PF>(bits, out);
        CANDIDATES.add(checked as u64);
        MATCHES.add((out.len() - before) as u64);
        PREFETCHES.add(self.prefetches_issued::<PF>());
        checked
    }

    /// How many `prefetch_read` calls one `match_into::<PF>` pass performs.
    ///
    /// Computed from the cluster shape instead of counted in the hot loop:
    /// one prefetch per (chunk with `j + LOOKAHEAD < n`, prefetched column).
    fn prefetches_issued<const PF: bool>(&self) -> u64 {
        if !PF || self.width() == 0 || self.subs.len() <= LOOKAHEAD {
            return 0;
        }
        let chunks = (self.subs.len() - LOOKAHEAD).div_ceil(UNFOLD);
        (chunks * self.width().min(MAX_PREFETCH_COLS)) as u64
    }

    fn match_dispatch<const PF: bool>(
        &self,
        bits: &PredicateBitVec,
        out: &mut Vec<SubscriptionId>,
    ) -> usize {
        match self.width() {
            0 => {
                // Access predicate covered everything: all subscriptions match.
                out.extend_from_slice(&self.subs);
                self.subs.len()
            }
            1 => self.match_fixed::<1, PF>(bits, out),
            2 => self.match_fixed::<2, PF>(bits, out),
            3 => self.match_fixed::<3, PF>(bits, out),
            4 => self.match_fixed::<4, PF>(bits, out),
            5 => self.match_fixed::<5, PF>(bits, out),
            6 => self.match_fixed::<6, PF>(bits, out),
            7 => self.match_fixed::<7, PF>(bits, out),
            8 => self.match_fixed::<8, PF>(bits, out),
            9 => self.match_fixed::<9, PF>(bits, out),
            10 => self.match_fixed::<10, PF>(bits, out),
            _ => self.match_generic::<PF>(bits, out),
        }
    }

    /// The size-specialised kernel. `N` is the column count, so the compiler
    /// fully unrolls the per-column conjunction, mirroring the paper's
    /// hand-written per-size methods.
    fn match_fixed<const N: usize, const PF: bool>(
        &self,
        bits: &PredicateBitVec,
        out: &mut Vec<SubscriptionId>,
    ) -> usize {
        debug_assert_eq!(self.cols.len(), N);
        let n_subs = self.subs.len();
        // Borrow the columns as fixed-size array of slices so indexing is
        // bounds-check-free after the per-chunk length test.
        let cols: [&[u32]; N] = std::array::from_fn(|i| self.cols[i].as_slice());

        let mut j = 0;
        while j < n_subs {
            let chunk_end = (j + UNFOLD).min(n_subs);
            if PF && j + LOOKAHEAD < n_subs {
                // Request the cache lines we will need two chunks from now.
                // Only the first few columns: later columns are reached
                // rarely when the early predicates are selective.
                for col in cols.iter().take(MAX_PREFETCH_COLS) {
                    prefetch_read(&col[j + LOOKAHEAD]);
                }
            }
            for k in j..chunk_end {
                let mut ok = true;
                // `N` is a compile-time constant: this loop unrolls into the
                // short-circuit conjunction of the paper's kernel.
                for col in &cols {
                    if !bits.get(col[k]) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    out.push(self.subs[k]);
                }
            }
            j = chunk_end;
        }
        n_subs
    }

    /// Generic kernel for clusters wider than ten columns.
    fn match_generic<const PF: bool>(
        &self,
        bits: &PredicateBitVec,
        out: &mut Vec<SubscriptionId>,
    ) -> usize {
        let n_subs = self.subs.len();
        let mut j = 0;
        while j < n_subs {
            let chunk_end = (j + UNFOLD).min(n_subs);
            if PF && j + LOOKAHEAD < n_subs {
                for col in self.cols.iter().take(MAX_PREFETCH_COLS) {
                    prefetch_read(&col[j + LOOKAHEAD]);
                }
            }
            for k in j..chunk_end {
                if self.cols.iter().all(|col| bits.get(col[k])) {
                    out.push(self.subs[k]);
                }
            }
            j = chunk_end;
        }
        n_subs
    }

    /// Approximate heap bytes used by this cluster.
    pub fn heap_bytes(&self) -> usize {
        self.cols.iter().map(|c| c.capacity() * 4).sum::<usize>() + self.subs.capacity() * 4
    }
}

/// A list of clusters sharing one access predicate, partitioned by remaining
/// size (paper Figure 1: "subscriptions are grouped in subscription clusters
/// according to their size").
#[derive(Debug, Default)]
pub struct ClusterList {
    /// Sparse by width: `clusters[w]` holds the cluster of width `w`.
    clusters: Vec<Option<Cluster>>,
    len: usize,
}

impl ClusterList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total subscriptions across all widths.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no subscription is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a subscription; returns `(width, slot)` — its location.
    pub fn insert(&mut self, id: SubscriptionId, bit_refs: &[u32]) -> (usize, usize) {
        let w = bit_refs.len();
        if self.clusters.len() <= w {
            self.clusters.resize_with(w + 1, || None);
        }
        let cluster = self.clusters[w].get_or_insert_with(|| Cluster::new(w));
        let slot = cluster.insert(id, bit_refs);
        self.len += 1;
        (w, slot)
    }

    /// Removes the subscription at `(width, slot)`; returns the id that moved
    /// into the vacated slot, if any.
    pub fn swap_remove(&mut self, width: usize, slot: usize) -> Option<SubscriptionId> {
        let cluster = self.clusters[width]
            .as_mut()
            .expect("removing from missing cluster");
        let moved = cluster.swap_remove(slot);
        self.len -= 1;
        if cluster.is_empty() {
            self.clusters[width] = None;
        }
        moved
    }

    /// The cluster of a given width, if present.
    pub fn cluster(&self, width: usize) -> Option<&Cluster> {
        self.clusters.get(width).and_then(|c| c.as_ref())
    }

    /// Iterates over the non-empty clusters.
    pub fn iter(&self) -> impl Iterator<Item = &Cluster> {
        self.clusters.iter().filter_map(|c| c.as_ref())
    }

    /// Matches the event bits against every cluster; returns subscriptions
    /// inspected.
    pub fn match_into<const PF: bool>(
        &self,
        bits: &PredicateBitVec,
        out: &mut Vec<SubscriptionId>,
    ) -> usize {
        let mut checked = 0;
        for cluster in self.iter() {
            checked += cluster.match_into::<PF>(bits, out);
        }
        checked
    }

    /// Approximate heap bytes.
    pub fn heap_bytes(&self) -> usize {
        self.clusters.capacity() * std::mem::size_of::<Option<Cluster>>()
            + self.iter().map(|c| c.heap_bytes()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: u32) -> SubscriptionId {
        SubscriptionId(i)
    }

    fn bits_with(set: &[u32]) -> PredicateBitVec {
        let mut b = PredicateBitVec::with_capacity(1024);
        for &i in set {
            b.set(i);
        }
        b
    }

    #[test]
    fn zero_width_cluster_matches_everything() {
        let mut c = Cluster::new(0);
        c.insert(sid(1), &[]);
        c.insert(sid(2), &[]);
        let bits = bits_with(&[]);
        let mut out = Vec::new();
        let checked = c.match_into::<false>(&bits, &mut out);
        assert_eq!(out, vec![sid(1), sid(2)]);
        assert_eq!(checked, 2);
    }

    #[test]
    fn conjunction_requires_all_bits() {
        let mut c = Cluster::new(3);
        c.insert(sid(1), &[0, 1, 2]);
        c.insert(sid(2), &[0, 1, 3]);
        c.insert(sid(3), &[4, 5, 6]);
        let bits = bits_with(&[0, 1, 2, 4, 5]);
        let mut out = Vec::new();
        c.match_into::<false>(&bits, &mut out);
        assert_eq!(out, vec![sid(1)]);
    }

    #[test]
    fn prefetch_variant_gives_identical_results() {
        let mut c = Cluster::new(2);
        for i in 0..1000u32 {
            c.insert(sid(i), &[i % 64, (i / 2) % 64]);
        }
        let bits = bits_with(&(0..32u32).collect::<Vec<_>>());
        let (mut a, mut b) = (Vec::new(), Vec::new());
        c.match_into::<false>(&bits, &mut a);
        c.match_into::<true>(&bits, &mut b);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn every_specialised_width_matches_correctly() {
        // For widths 1..=12 (covering all specialisations and the generic
        // path), build a cluster where exactly the even-indexed subscriptions
        // match, with enough subscriptions to cross several UNFOLD chunks.
        for width in 1..=12usize {
            let mut c = Cluster::new(width);
            let good: Vec<u32> = (0..width as u32).collect(); // bits 0..w set
            let bad: Vec<u32> = (100..100 + width as u32).collect(); // unset
            for i in 0..75u32 {
                let refs = if i % 2 == 0 { &good } else { &bad };
                c.insert(sid(i), refs);
            }
            let bits = bits_with(&good);
            for pf in [false, true] {
                let mut out = Vec::new();
                let checked = if pf {
                    c.match_into::<true>(&bits, &mut out)
                } else {
                    c.match_into::<false>(&bits, &mut out)
                };
                assert_eq!(checked, 75);
                let expect: Vec<_> = (0..75u32).filter(|i| i % 2 == 0).map(sid).collect();
                assert_eq!(out, expect, "width {width}, prefetch {pf}");
            }
        }
    }

    #[test]
    fn swap_remove_reports_moved_subscription() {
        let mut c = Cluster::new(1);
        c.insert(sid(1), &[10]);
        c.insert(sid(2), &[20]);
        c.insert(sid(3), &[30]);
        // Removing the head moves the tail into slot 0.
        assert_eq!(c.swap_remove(0), Some(sid(3)));
        assert_eq!(c.bit_refs_at(0), vec![30]);
        // Removing the last slot moves nothing.
        assert_eq!(c.swap_remove(1), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.subscriptions(), &[sid(3)]);
    }

    #[test]
    fn cluster_list_partitions_by_width() {
        let mut l = ClusterList::new();
        let (w1, s1) = l.insert(sid(1), &[0]);
        let (w2, _s2) = l.insert(sid(2), &[0, 1]);
        let (w3, s3) = l.insert(sid(3), &[0]);
        assert_eq!((w1, s1), (1, 0));
        assert_eq!(w2, 2);
        assert_eq!((w3, s3), (1, 1));
        assert_eq!(l.len(), 3);
        assert_eq!(l.cluster(1).unwrap().len(), 2);
        assert_eq!(l.cluster(2).unwrap().len(), 1);
        assert!(l.cluster(3).is_none());

        let bits = bits_with(&[0, 1]);
        let mut out = Vec::new();
        let checked = l.match_into::<false>(&bits, &mut out);
        out.sort();
        assert_eq!(out, vec![sid(1), sid(2), sid(3)]);
        assert_eq!(checked, 3);
    }

    #[test]
    fn cluster_list_removal_drops_empty_clusters() {
        let mut l = ClusterList::new();
        let (w, s) = l.insert(sid(1), &[0, 1]);
        assert_eq!(l.swap_remove(w, s), None);
        assert!(l.is_empty());
        assert!(l.cluster(2).is_none());
    }

    #[test]
    fn matching_respects_chunk_remainders() {
        // A cluster whose size is not a multiple of UNFOLD must still check
        // the tail (the paper's footnote 2).
        let n = UNFOLD * 3 + 7;
        let mut c = Cluster::new(1);
        for i in 0..n as u32 {
            c.insert(sid(i), &[0]);
        }
        let bits = bits_with(&[0]);
        let mut out = Vec::new();
        c.match_into::<true>(&bits, &mut out);
        assert_eq!(out.len(), n);
    }
}
