//! The clustered matchers: schema-based multi-attribute clustering with the
//! cost model of §3, in two flavours:
//!
//! * **static** — the greedy optimizer runs once over the whole subscription
//!   set ([`ClusteredMatcher::finalize`], paper §3.2); afterwards the table
//!   configuration never changes (the *no change* strategy of Figure 4).
//! * **dynamic** — the maintenance algorithm of §4 creates and deletes
//!   multi-attribute tables online, driven by cluster benefit margins and
//!   table benefits.
//!
//! Both start from the *natural clustering*: one single-attribute table per
//! equality attribute, created lazily (those hash structures exist for the
//! predicate phase anyway, so the cost model charges them nothing extra).

use crate::cluster::ClusterList;
use crate::engine::{EngineStats, MatchEngine};
use crate::tables::MultiAttrTable;
use pubsub_cost::{
    greedy_clustering, CostConstants, EventStatistics, GreedyConfig, SelectivityEstimator,
    SubscriptionProfile,
};
use pubsub_index::{Phase1Batch, PredicateBitVec, PredicateId, PredicateIndex};
use pubsub_types::metrics::Counter;
use pubsub_types::{
    AttrId, AttrSet, Event, FxHashMap, FxHashSet, Subscription, SubscriptionId, Value,
};
use std::time::Instant;

/// Events matched by the clustered engine (static or dynamic).
static EVENTS: Counter = Counter::new("core.clustered.events");
/// Candidate subscriptions the table/fallback kernels verified.
static VERIFIED: Counter = Counter::new("core.clustered.verified");
/// Subscriptions the clustered engine reported as matches.
static MATCHED: Counter = Counter::new("core.clustered.matched");
/// Multi- or single-attribute tables created (lazy singletons included).
static TABLES_CREATED: Counter = Counter::new("core.clustered.tables_created");
/// Tables dropped (weak-table deletion and redistribution).
static TABLES_REMOVED: Counter = Counter::new("core.clustered.tables_removed");
/// Subscriptions relocated between tables/fallback by the optimizer.
static SUB_MIGRATIONS: Counter = Counter::new("core.clustered.sub_migrations");
/// Full maintenance passes executed (paper §4).
static MAINTENANCE_RUNS: Counter = Counter::new("core.clustered.maintenance_runs");
/// Cluster benefit-margin evaluations (`ν(p_c)·|c|` vs `BMmax`) — the
/// cost-model inputs of the dynamic algorithm.
static MARGIN_CHECKS: Counter = Counter::new("core.clustered.margin_checks");

/// Tuning knobs of the dynamic maintenance algorithm (paper §4 thresholds).
#[derive(Debug, Clone, Copy)]
pub struct DynamicConfig {
    /// Operations (inserts + removes + events) between maintenance passes —
    /// the paper's "metrics are updated periodically".
    pub period: usize,
    /// `BMmax`: a cluster whose benefit margin `ν(p_c)·|c|` (expected
    /// subscription checks per event) exceeds this is redistributed.
    pub bm_max: f64,
    /// `Bcreate`: a potential table is created once at least this many
    /// candidate subscriptions would benefit from it.
    pub b_create: usize,
    /// `Bdelete`: a table whose population falls below this is deleted and
    /// its subscriptions redistributed.
    pub b_delete: usize,
    /// Cap on new table schema size (see DESIGN.md §3 on `GA(S)`).
    pub max_schema_len: usize,
    /// Minimum expected checks-per-event saving a potential table must give
    /// one subscription before the subscription votes for it (or is moved to
    /// it). Guards against cascades of ever-wider tables whose marginal gain
    /// is noise next to the per-event table-probe overhead.
    pub min_gain: f64,
    /// Decay event statistics by half at each maintenance pass, so drifting
    /// event patterns are tracked (Figure 4b).
    pub decay_stats: bool,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self {
            period: 8192,
            bm_max: 16.0,
            b_create: 1024,
            b_delete: 8,
            max_schema_len: 4,
            min_gain: 1e-4,
            decay_stats: true,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Static,
    Dynamic,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Placement {
    Table {
        table: u32,
        tuple: Box<[Value]>,
        width: u32,
        slot: u32,
    },
    Fallback {
        width: u32,
        slot: u32,
    },
}

#[derive(Debug)]
struct SubEntry {
    /// Interned predicate ids in canonical order (equality first).
    pred_ids: Vec<PredicateId>,
    /// Equality pairs, parallel to the leading `pred_ids`.
    eq_pairs: Vec<(AttrId, Value)>,
    size: u32,
    place: Placement,
    /// The paper's maintenance *mark*: set once this subscription has voted
    /// for potential tables, cleared when it moves (so it can vote again
    /// from its new cluster).
    voted: bool,
}

/// Accumulated benefit of a potential (not yet created) hash table — the
/// paper's `B(H)` for `H ∈ PH`, with its candidate subscriptions.
#[derive(Debug, Default)]
struct Potential {
    count: usize,
    /// Accumulated expected checks-per-event saving of the voters — the
    /// benefit side of cost formula 3.1 for this would-be table.
    gain: f64,
    /// Already queued on the ready list.
    queued: bool,
    candidates: Vec<SubscriptionId>,
}

/// The clustered matching engine (static or dynamic).
#[derive(Debug)]
pub struct ClusteredMatcher {
    mode: Mode,
    config: DynamicConfig,
    consts: CostConstants,
    index: PredicateIndex,
    tables: Vec<Option<MultiAttrTable>>,
    free_tables: Vec<usize>,
    by_schema: FxHashMap<AttrSet, usize>,
    fallback: ClusterList,
    subs: Vec<Option<SubEntry>>,
    live: usize,
    est: EventStatistics,
    ops_since_maintenance: usize,
    ops_total: usize,
    /// Clusters whose benefit margin crossed `BMmax` at insert time, queued
    /// for local redistribution at the next operation boundary.
    pending: Vec<(u32, Box<[Value]>)>,
    pending_set: FxHashSet<(u32, Box<[Value]>)>,
    /// Clusters already redistributed since the last full pass. A cluster
    /// whose margin cannot be improved (e.g. genuinely hot under skew) must
    /// not be rescanned on every insertion; it gets another chance each
    /// period.
    cooldown: FxHashSet<(u32, Box<[Value]>)>,
    /// Potential tables and their accumulated votes (paper §4's `PH`).
    potential: FxHashMap<AttrSet, Potential>,
    /// Potential tables whose vote count crossed `Bcreate`, awaiting
    /// creation (so the potential map is never scanned on the hot path).
    ready: Vec<AttrSet>,
    in_maintenance: bool,
    // Per-event workhorse buffers.
    bits: PredicateBitVec,
    satisfied: Vec<PredicateId>,
    /// Reusable scratch for the batched phase-1 path.
    batch: Phase1Batch,
    probe_buf: Vec<Value>,
    /// Dense attr → value view of the current event (cleared after each
    /// match).
    view: Vec<Option<Value>>,
    /// Set by [`ClusteredMatcher::freeze`]: stop updating event statistics.
    stats_frozen: bool,
    stats: EngineStats,
}

impl ClusteredMatcher {
    /// Creates a static-clustering matcher (optimize via
    /// [`MatchEngine::finalize`]).
    pub fn new_static() -> Self {
        Self::with_mode(Mode::Static, DynamicConfig::default())
    }

    /// Creates a dynamic matcher with default thresholds.
    pub fn new_dynamic() -> Self {
        Self::with_mode(Mode::Dynamic, DynamicConfig::default())
    }

    /// Creates a dynamic matcher with custom thresholds.
    pub fn new_dynamic_with(config: DynamicConfig) -> Self {
        Self::with_mode(Mode::Dynamic, config)
    }

    fn with_mode(mode: Mode, config: DynamicConfig) -> Self {
        Self {
            mode,
            config,
            consts: CostConstants::default(),
            index: PredicateIndex::new(),
            tables: Vec::new(),
            free_tables: Vec::new(),
            by_schema: FxHashMap::default(),
            fallback: ClusterList::new(),
            subs: Vec::new(),
            live: 0,
            est: EventStatistics::new(),
            ops_since_maintenance: 0,
            ops_total: 0,
            pending: Vec::new(),
            pending_set: FxHashSet::default(),
            cooldown: FxHashSet::default(),
            potential: FxHashMap::default(),
            ready: Vec::new(),
            in_maintenance: false,
            bits: PredicateBitVec::new(),
            satisfied: Vec::new(),
            batch: Phase1Batch::new(),
            probe_buf: Vec::new(),
            view: Vec::new(),
            stats_frozen: false,
            stats: EngineStats::default(),
        }
    }

    /// Freezes the current clustering: maintenance stops running *and* the
    /// event statistics stop updating, turning this instance into the
    /// *no change* strategy of Figure 4 — insertions still pick the best
    /// existing table, but against the selectivities as they were at freeze
    /// time; tables are never created or deleted again unless
    /// [`ClusteredMatcher::reoptimize`] is called explicitly.
    pub fn freeze(&mut self) {
        self.mode = Mode::Static;
        self.stats_frozen = true;
    }

    /// Summary of the current table configuration:
    /// `(schema, population, entries)` per table. Used by the experiments.
    pub fn table_summary(&self) -> Vec<(AttrSet, usize, usize)> {
        self.tables
            .iter()
            .flatten()
            .map(|t| (t.schema().clone(), t.population(), t.entry_count()))
            .collect()
    }

    /// Current event-statistics estimator (for inspection).
    pub fn statistics(&self) -> &EventStatistics {
        &self.est
    }

    // ---- table management -------------------------------------------------

    fn create_table(&mut self, schema: AttrSet) -> usize {
        debug_assert!(!self.by_schema.contains_key(&schema));
        TABLES_CREATED.inc();
        let table = MultiAttrTable::new(schema.clone());
        let idx = if let Some(i) = self.free_tables.pop() {
            self.tables[i] = Some(table);
            i
        } else {
            self.tables.push(Some(table));
            self.tables.len() - 1
        };
        self.by_schema.insert(schema, idx);
        idx
    }

    fn drop_table(&mut self, idx: usize) -> MultiAttrTable {
        TABLES_REMOVED.inc();
        let table = self.tables[idx].take().expect("dropping live table");
        self.by_schema.remove(table.schema());
        self.free_tables.push(idx);
        table
    }

    /// Lazily creates the single-attribute tables for every equality
    /// attribute of a new subscription — the natural clustering of §3.2.
    fn ensure_singletons(&mut self, eq_pairs: &[(AttrId, Value)]) {
        for &(a, _) in eq_pairs {
            let schema: AttrSet = [a].into_iter().collect();
            if !self.by_schema.contains_key(&schema) {
                self.create_table(schema);
            }
        }
    }

    // ---- placement --------------------------------------------------------

    /// Expected per-event cost of placing a subscription with `eq_pairs` /
    /// `size` in table `idx` (`ν(p)·checking(p, s)`), or `None` if the table
    /// schema is not covered by the pairs.
    fn table_score(&self, idx: usize, eq_pairs: &[(AttrId, Value)], size: usize) -> Option<f64> {
        let table = self.tables[idx].as_ref()?;
        // Allocation-free: this sits under every insertion (best_table scans
        // all tables) and under cluster redistribution.
        let mut nu = 1.0f64;
        let mut covered = 0usize;
        for &a in table.attrs() {
            let v = eq_pairs.iter().find(|&&(pa, _)| pa == a)?.1;
            nu *= self.est.eq_selectivity(a, v);
            covered += 1;
        }
        Some(nu * self.consts.checking(size, covered))
    }

    /// The best table for a subscription, if any covers its equality pairs.
    fn best_table(&self, eq_pairs: &[(AttrId, Value)], size: usize) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for idx in 0..self.tables.len() {
            if let Some(score) = self.table_score(idx, eq_pairs, size) {
                if best.is_none_or(|(_, b)| score < b) {
                    best = Some((idx, score));
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Computes the remaining-predicate bit references of a subscription
    /// placed in `table_idx`, plus the access tuple.
    fn refs_and_tuple(&self, entry: &SubEntry, table_idx: usize) -> (Vec<u32>, Box<[Value]>) {
        let table = self.tables[table_idx].as_ref().expect("live table");
        // Which equality predicates does the access predicate cover? For
        // each table attribute, the first equality pair with that attribute
        // (a subscription may carry two `=` on one attribute; only one can
        // be part of the access tuple).
        let mut covered = vec![false; entry.eq_pairs.len()];
        let mut tuple = Vec::with_capacity(table.attrs().len());
        for &a in table.attrs() {
            let i = entry
                .eq_pairs
                .iter()
                .position(|&(pa, _)| pa == a)
                .expect("placement covers schema");
            covered[i] = true;
            tuple.push(entry.eq_pairs[i].1);
        }
        let bit_refs: Vec<u32> = entry
            .pred_ids
            .iter()
            .enumerate()
            .filter(|&(i, _)| i >= covered.len() || !covered[i])
            .map(|(_, pid)| pid.0)
            .collect();
        (bit_refs, tuple.into_boxed_slice())
    }

    /// Inserts the subscription (whose entry must already exist in
    /// `self.subs`) into `table_idx` or the fallback list, recording the
    /// placement.
    fn place(&mut self, id: SubscriptionId, table_idx: Option<usize>) {
        let entry = self.subs[id.index()].as_ref().expect("entry exists");
        match table_idx {
            Some(ti) => {
                let (bit_refs, tuple) = self.refs_and_tuple(entry, ti);
                let (width, slot) = self.tables[ti].as_mut().expect("live table").insert(
                    tuple.clone(),
                    id,
                    &bit_refs,
                );
                self.subs[id.index()].as_mut().unwrap().place = Placement::Table {
                    table: ti as u32,
                    tuple: tuple.clone(),
                    width: width as u32,
                    slot: slot as u32,
                };
                // The paper updates a cluster's benefit margin on insertion
                // and calls the maintenance algorithm when it crosses BMmax;
                // we queue the cluster for local redistribution at the next
                // operation boundary.
                if self.mode == Mode::Dynamic && !self.in_maintenance {
                    self.check_margin(ti, tuple);
                }
            }
            None => {
                let bit_refs: Vec<u32> = entry.pred_ids.iter().map(|p| p.0).collect();
                let (width, slot) = self.fallback.insert(id, &bit_refs);
                self.subs[id.index()].as_mut().unwrap().place = Placement::Fallback {
                    width: width as u32,
                    slot: slot as u32,
                };
            }
        }
    }

    /// Removes the subscription from its current placement, fixing up the
    /// location of whichever subscription was swapped into its slot.
    fn unplace(&mut self, id: SubscriptionId) {
        let place = self.subs[id.index()]
            .as_ref()
            .expect("entry exists")
            .place
            .clone();
        let moved = match &place {
            Placement::Table {
                table,
                tuple,
                width,
                slot,
            } => self.tables[*table as usize]
                .as_mut()
                .expect("live table")
                .remove(tuple, *width as usize, *slot as usize),
            Placement::Fallback { width, slot } => {
                self.fallback.swap_remove(*width as usize, *slot as usize)
            }
        };
        if let Some(m) = moved {
            let m_entry = self.subs[m.index()].as_mut().expect("moved sub is live");
            match (&mut m_entry.place, &place) {
                (Placement::Table { slot, .. }, Placement::Table { slot: new_slot, .. }) => {
                    *slot = *new_slot
                }
                (Placement::Fallback { slot, .. }, Placement::Fallback { slot: new_slot, .. }) => {
                    *slot = *new_slot
                }
                _ => unreachable!("moved subscription lives in the same structure"),
            }
        }
    }

    /// Moves a subscription to `table_idx` (or fallback).
    fn relocate(&mut self, id: SubscriptionId, table_idx: Option<usize>) {
        self.unplace(id);
        self.place(id, table_idx);
        // Moving deletes the vote mark (paper §4's Cluster_distribute).
        self.subs[id.index()].as_mut().expect("live sub").voted = false;
        self.stats.subscription_moves += 1;
        SUB_MIGRATIONS.inc();
    }

    fn current_table_of(&self, id: SubscriptionId) -> Option<usize> {
        match &self.subs[id.index()].as_ref()?.place {
            Placement::Table { table, .. } => Some(*table as usize),
            Placement::Fallback { .. } => None,
        }
    }

    // ---- maintenance (paper §4) -------------------------------------------

    /// Margin check for one cluster, queued when it crosses `BMmax`.
    fn check_margin(&mut self, ti: usize, tuple: Box<[Value]>) {
        let Some(table) = self.tables[ti].as_ref() else {
            return;
        };
        let Some(list) = table.entry_list(&tuple) else {
            return;
        };
        MARGIN_CHECKS.inc();
        let mut nu = 1.0f64;
        for (a, v) in table.attrs().iter().zip(tuple.iter()) {
            nu *= self.est.eq_selectivity(*a, *v);
        }
        if nu * list.len() as f64 > self.config.bm_max {
            let key = (ti as u32, tuple);
            if !self.cooldown.contains(&key) && self.pending_set.insert(key.clone()) {
                self.pending.push(key);
            }
        }
    }

    /// Operations between clears of the cluster cooldown set: a stubborn
    /// over-margin cluster is reconsidered after this many operations even
    /// if no full maintenance pass ran in between.
    const COOLDOWN_WINDOW: usize = 1024;

    fn bump_ops(&mut self) {
        if self.mode != Mode::Dynamic {
            return;
        }
        self.ops_since_maintenance += 1;
        self.ops_total += 1;
        if self.ops_total.is_multiple_of(Self::COOLDOWN_WINDOW) {
            self.cooldown.clear();
        }
        if !self.pending.is_empty() && !self.in_maintenance {
            self.process_pending();
        }
        if self.ops_since_maintenance >= self.config.period {
            self.run_maintenance();
            self.ops_since_maintenance = 0;
        }
    }

    /// Drains the queue of clusters whose margin crossed `BMmax` at insert
    /// time, redistributing each locally (the paper's per-metric-update
    /// maintenance trigger).
    fn process_pending(&mut self) {
        self.in_maintenance = true;
        while let Some((ti, tuple)) = self.pending.pop() {
            self.pending_set.remove(&(ti, tuple.clone()));
            self.redistribute_cluster(ti as usize, &tuple);
            self.cooldown.insert((ti, tuple));
        }
        self.create_ready_tables();
        self.in_maintenance = false;
    }

    /// One full maintenance pass: decay statistics, delete under-populated
    /// tables, sweep every cluster for excessive margins (statistics drift
    /// can push clusters over `BMmax` without any insertion), create tables
    /// whose accumulated benefit reached `Bcreate`, drop emptied tables.
    pub fn run_maintenance(&mut self) {
        MAINTENANCE_RUNS.inc();
        self.in_maintenance = true;
        if self.config.decay_stats {
            self.est.halve();
        }
        self.delete_weak_tables();

        // Prune potential tables that never came close to Bcreate so the
        // map stays small; their candidates' marks are cleared so they can
        // vote again from scratch if the pressure returns.
        let floor = (self.config.b_create / 8).max(8);
        let mut dropped: Vec<Potential> = Vec::new();
        self.potential.retain(|_, p| {
            if p.count < floor {
                dropped.push(std::mem::take(p));
                false
            } else {
                true
            }
        });
        for pot in dropped {
            for s in pot.candidates {
                if let Some(e) = self.subs.get_mut(s.index()).and_then(|e| e.as_mut()) {
                    e.voted = false;
                }
            }
        }

        // Sweep for over-margin clusters (rare outside skew drift; the
        // common trigger is the insert-time check).
        let mut over: Vec<(usize, Box<[Value]>)> = Vec::new();
        for (ti, table) in self.tables.iter().enumerate() {
            let Some(table) = table else { continue };
            for (tuple, list) in table.entries() {
                let mut nu = 1.0f64;
                for (a, v) in table.attrs().iter().zip(tuple.iter()) {
                    nu *= self.est.eq_selectivity(*a, *v);
                }
                if nu * list.len() as f64 > self.config.bm_max {
                    over.push((ti, tuple.to_vec().into_boxed_slice()));
                }
            }
        }
        if !over.is_empty() && std::env::var_os("FASTPUBSUB_MAINT_DEBUG").is_some() {
            eprintln!(
                "        [maint] {} over-margin clusters, {} tables, {} potentials",
                over.len(),
                self.by_schema.len(),
                self.potential.len()
            );
        }
        for (ti, tuple) in over {
            self.redistribute_cluster(ti, &tuple);
        }
        self.create_ready_tables();

        // Drop multi-attribute tables the redistribution emptied entirely.
        // Empty *singleton* tables stay: they are the natural clustering and
        // the next insertion would just recreate them (delete/recreate
        // cycles would dominate the deletion statistics).
        let empty: Vec<usize> = self
            .tables
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                t.as_ref()
                    .filter(|t| t.population() == 0 && t.schema().len() > 1)
                    .map(|_| i)
            })
            .collect();
        for idx in empty {
            self.drop_table(idx);
            self.stats.tables_deleted += 1;
        }
        // Drained pending entries may reference dropped tables; the guards
        // in check/redistribute tolerate that, but clear anyway. Clearing
        // the cooldown gives stubborn clusters another chance next period.
        self.pending.clear();
        self.pending_set.clear();
        self.cooldown.clear();
        self.in_maintenance = false;
    }

    /// Deletes tables whose benefit `B(H) ≈ |H|` fell below `Bdelete`,
    /// redistributing their subscriptions — unless a subscription would land
    /// in the always-checked fallback list, in which case the table is kept
    /// (deleting it could only make matching slower). Empty singletons are
    /// kept too: the next insertion would just recreate them.
    fn delete_weak_tables(&mut self) {
        let victims: Vec<usize> = self
            .tables
            .iter()
            .enumerate()
            .filter_map(|(i, t)| {
                t.as_ref()
                    .filter(|t| t.population() > 0 && t.population() < self.config.b_delete)
                    .map(|_| i)
            })
            .collect();
        for idx in victims {
            let subs = self.tables[idx].as_ref().expect("live").all_subscriptions();
            // Every inhabitant must have an alternative table.
            let all_have_alternative = subs.iter().all(|&s| {
                let e = self.subs[s.index()].as_ref().expect("live sub");
                let (pairs, size) = (e.eq_pairs.clone(), e.size as usize);
                (0..self.tables.len())
                    .any(|other| other != idx && self.table_score(other, &pairs, size).is_some())
            });
            if !all_have_alternative {
                continue;
            }
            let table = self.drop_table(idx);
            self.stats.tables_deleted += 1;
            for s in table.all_subscriptions() {
                let e = self.subs[s.index()].as_ref().expect("live sub");
                let (pairs, size) = (e.eq_pairs.clone(), e.size as usize);
                let best = self.best_table(&pairs, size);
                debug_assert!(best.is_some());
                // The old placement died with the table: place directly.
                self.place(s, best);
                self.subs[s.index()].as_mut().expect("live sub").voted = false;
                self.stats.subscription_moves += 1;
            }
        }
    }

    /// The paper's `Cluster_distribute` for one cluster: move members to
    /// better existing tables; if the residual margin is still excessive,
    /// let unmarked members vote for the potential tables that would help
    /// them (`B(H) += 1`, mark the subscription).
    fn redistribute_cluster(&mut self, ti: usize, tuple: &[Value]) {
        let members: Vec<SubscriptionId> = {
            let Some(table) = self.tables[ti].as_ref() else {
                return;
            };
            let Some(list) = table.entry_list(tuple) else {
                return;
            };
            let mut m = Vec::with_capacity(list.len());
            for cluster in list.iter() {
                m.extend_from_slice(cluster.subscriptions());
            }
            m
        };

        let in_this_cluster = |this: &Self, s: SubscriptionId| -> bool {
            match &this.subs[s.index()].as_ref().expect("live sub").place {
                Placement::Table {
                    table, tuple: t, ..
                } => *table as usize == ti && t.as_ref() == tuple,
                Placement::Fallback { .. } => false,
            }
        };

        // Phase 1: redistribute into better existing tables.
        let mut still_score = 0.0f64;
        for &s in &members {
            if !in_this_cluster(self, s) {
                continue;
            }
            let e = self.subs[s.index()].as_ref().expect("live sub");
            let (pairs, size) = (e.eq_pairs.clone(), e.size as usize);
            let cur = self
                .table_score(ti, &pairs, size)
                .expect("current placement scores");
            if let Some(best) = self.best_table(&pairs, size) {
                if best != ti {
                    let score = self.table_score(best, &pairs, size).expect("covers");
                    if cur - score > self.config.min_gain {
                        self.relocate(s, Some(best));
                        continue;
                    }
                }
            }
            still_score += cur;
        }

        // Phase 2: residual margin still excessive → vote.
        if still_score <= self.config.bm_max {
            return;
        }
        for &s in &members {
            if !in_this_cluster(self, s) {
                continue;
            }
            if self.subs[s.index()].as_ref().expect("live sub").voted {
                continue;
            }
            let e = self.subs[s.index()].as_ref().expect("live sub");
            let (pairs, size) = (e.eq_pairs.clone(), e.size as usize);
            let cur = self.table_score(ti, &pairs, size).expect("scores");
            let schema: AttrSet = pairs.iter().map(|&(a, _)| a).collect();
            let mut voted = false;
            for subset in pubsub_cost::subsets_up_to(&schema, self.config.max_schema_len) {
                if self.by_schema.contains_key(&subset) {
                    continue;
                }
                // Only count the vote if the potential table would actually
                // lower this subscription's expected cost.
                let mut nu = 1.0f64;
                let mut covered = 0usize;
                for a in subset.iter() {
                    let v = pairs.iter().find(|&&(pa, _)| pa == a).expect("subset").1;
                    nu *= self.est.eq_selectivity(a, v);
                    covered += 1;
                }
                let score = nu * self.consts.checking(size, covered);
                let gain = cur - score;
                if gain > self.config.min_gain {
                    let overhead = self
                        .consts
                        .table_overhead(self.est.schema_inclusion(&subset), subset.len());
                    let p = self.potential.entry(subset.clone()).or_default();
                    p.count += 1;
                    p.gain += gain;
                    p.candidates.push(s);
                    // Create once enough subscriptions benefit (the paper's
                    // Bcreate) *and* the accumulated saving outweighs the
                    // table's per-event probe overhead (formula 3.1).
                    if !p.queued && p.count >= self.config.b_create && p.gain >= overhead {
                        p.queued = true;
                        self.ready.push(subset);
                    }
                    voted = true;
                }
            }
            if voted {
                self.subs[s.index()].as_mut().expect("live sub").voted = true;
            }
        }
    }

    /// Creates every potential table whose accumulated benefit reached
    /// `Bcreate` and redistributes its candidate subscriptions — the
    /// creation half of the paper's maintenance algorithm.
    fn create_ready_tables(&mut self) {
        if self.ready.is_empty() {
            return;
        }
        let mut ready = std::mem::take(&mut self.ready);
        // Most-voted first; deterministic tie-break.
        ready.sort_by(|a, b| {
            self.potential[b]
                .count
                .cmp(&self.potential[a].count)
                .then_with(|| a.to_sorted_vec().cmp(&b.to_sorted_vec()))
        });
        'next_schema: for schema in ready {
            let Some(pot) = self.potential.remove(&schema) else {
                continue;
            };
            if self.by_schema.contains_key(&schema) {
                continue;
            }
            // Votes go stale: a table created moments ago may already have
            // absorbed these candidates' benefit. Re-validate the total gain
            // against the candidates' *current* placements before paying for
            // another table.
            {
                let overhead = self
                    .consts
                    .table_overhead(self.est.schema_inclusion(&schema), schema.len());
                let mut live_gain = 0.0f64;
                let mut live_count = 0usize;
                for &s in &pot.candidates {
                    let Some(e) = self.subs.get(s.index()).and_then(|e| e.as_ref()) else {
                        continue;
                    };
                    let (pairs, size) = (e.eq_pairs.clone(), e.size as usize);
                    let cur = match self.current_table_of(s) {
                        Some(t) => self.table_score(t, &pairs, size).expect("scores"),
                        None => self.consts.checking(size, 0),
                    };
                    // Score under the would-be table.
                    let mut nu = 1.0f64;
                    let mut covered = 0usize;
                    let mut covers = true;
                    for a in schema.iter() {
                        match pairs.iter().find(|&&(pa, _)| pa == a) {
                            Some(&(_, v)) => {
                                nu *= self.est.eq_selectivity(a, v);
                                covered += 1;
                            }
                            None => {
                                covers = false;
                                break;
                            }
                        }
                    }
                    if !covers {
                        continue;
                    }
                    let score = nu * self.consts.checking(size, covered);
                    if cur - score > self.config.min_gain {
                        live_gain += cur - score;
                        live_count += 1;
                    }
                }
                if live_count < self.config.b_create || live_gain < overhead {
                    // Not worth it any more; let the candidates vote again
                    // from their current clusters if pressure returns.
                    for s in pot.candidates {
                        if let Some(e) = self.subs.get_mut(s.index()).and_then(|e| e.as_mut()) {
                            e.voted = false;
                        }
                    }
                    continue 'next_schema;
                }
            }
            self.create_table(schema);
            self.stats.tables_created += 1;
            for s in pot.candidates {
                if self.subs[s.index()].is_none() {
                    continue; // removed meanwhile
                }
                let e = self.subs[s.index()].as_ref().expect("live sub");
                let (pairs, size) = (e.eq_pairs.clone(), e.size as usize);
                let cur_table = self.current_table_of(s);
                let cur = match cur_table {
                    Some(t) => self.table_score(t, &pairs, size).expect("scores"),
                    None => self.consts.checking(size, 0),
                };
                if let Some(best) = self.best_table(&pairs, size) {
                    if Some(best) != cur_table {
                        let score = self.table_score(best, &pairs, size).expect("covers");
                        if cur - score > self.config.min_gain {
                            self.relocate(s, Some(best));
                        }
                    }
                }
            }
        }
    }

    // ---- matching ---------------------------------------------------------

    /// Phase 2: probes every table whose schema the event covers (plus the
    /// fallback list) against `bits`. Returns candidates checked.
    fn phase2(
        &mut self,
        event: &Event,
        bits: &PredicateBitVec,
        out: &mut Vec<SubscriptionId>,
    ) -> usize {
        let mut view = std::mem::take(&mut self.view);
        let mut probe_buf = std::mem::take(&mut self.probe_buf);
        let checked = self.phase2_with(event, bits, &mut view, &mut probe_buf, out);
        self.view = view;
        self.probe_buf = probe_buf;
        checked
    }

    /// [`ClusteredMatcher::phase2`] with caller-owned probe buffers, so the
    /// read-only [`crate::view::MatchView`] path can share `self` across
    /// threads. `view` and `probe_buf` are pure scratch (left cleared).
    fn phase2_with(
        &self,
        event: &Event,
        bits: &PredicateBitVec,
        view: &mut Vec<Option<Value>>,
        probe_buf: &mut Vec<Value>,
        out: &mut Vec<SubscriptionId>,
    ) -> usize {
        let mut checked = 0usize;
        let schema = event.schema();
        // Dense attr → value view: probing every table per event must not
        // pay a binary search per schema attribute.
        for &(a, v) in event.pairs() {
            if view.len() <= a.index() {
                view.resize(a.index() + 1, None);
            }
            view[a.index()] = Some(v);
        }
        for table in self.tables.iter().flatten() {
            if !table.schema().is_subset(schema) {
                continue;
            }
            if let Some(list) = table.probe_view(view, probe_buf) {
                checked += list.match_into::<true>(bits, out);
            }
        }
        for &(a, _) in event.pairs() {
            view[a.index()] = None;
        }
        if !self.fallback.is_empty() {
            checked += self.fallback.match_into::<true>(bits, out);
        }
        checked
    }

    /// Folds one event's timings and counts into the stats and metrics.
    fn record_event(&mut self, phase1: u64, phase2: u64, checked: u64, matched: u64) {
        self.stats.events += 1;
        self.stats.subscriptions_checked += checked;
        self.stats.matches += matched;
        self.stats.phase1_nanos += phase1;
        self.stats.phase2_nanos += phase2;
        EVENTS.inc();
        VERIFIED.add(checked);
        MATCHED.add(matched);
        crate::engine::PHASE1_NANOS.record(phase1);
        crate::engine::PHASE2_NANOS.record(phase2);
    }

    // ---- static optimization (paper §3.2) -----------------------------------

    /// Runs the greedy cost-based optimizer over the full subscription set
    /// and rebuilds the table configuration to the resulting plan.
    pub fn reoptimize(&mut self, greedy: &GreedyConfig) {
        let mut ids: Vec<SubscriptionId> = Vec::with_capacity(self.live);
        let mut profiles: Vec<SubscriptionProfile> = Vec::with_capacity(self.live);
        for (i, e) in self.subs.iter().enumerate() {
            if let Some(e) = e {
                ids.push(SubscriptionId(i as u32));
                profiles.push(SubscriptionProfile {
                    eq_pairs: e.eq_pairs.clone(),
                    size: e.size as usize,
                });
            }
        }
        let plan = greedy_clustering(&profiles, &self.est, &self.consts, greedy);

        // Materialise the plan's tables.
        let mut plan_tables: Vec<usize> = Vec::with_capacity(plan.schemas.len());
        for schema in &plan.schemas {
            let idx = match self.by_schema.get(schema) {
                Some(&i) => i,
                None => self.create_table(schema.clone()),
            };
            plan_tables.push(idx);
        }

        // Re-place every subscription per the plan.
        for (k, &id) in ids.iter().enumerate() {
            let target = plan.assignment[k].map(|s| plan_tables[s]);
            if self.current_table_of(id) != target {
                self.relocate(id, target);
            }
        }

        // Remove tables the plan emptied.
        let empty: Vec<usize> = self
            .tables
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().filter(|t| t.population() == 0).map(|_| i))
            .collect();
        for idx in empty {
            self.drop_table(idx);
        }
    }
}

impl MatchEngine for ClusteredMatcher {
    fn name(&self) -> &'static str {
        match self.mode {
            Mode::Static => "static",
            Mode::Dynamic => "dynamic",
        }
    }

    fn insert(&mut self, id: SubscriptionId, sub: &Subscription) {
        let need = id.index() + 1;
        if self.subs.len() < need {
            self.subs.resize_with(need, || None);
        }
        assert!(
            self.subs[id.index()].is_none(),
            "duplicate subscription id {id}"
        );
        let pred_ids: Vec<PredicateId> = sub
            .predicates()
            .iter()
            .map(|p| self.index.intern(*p))
            .collect();
        let eq_pairs: Vec<(AttrId, Value)> = sub
            .equality_predicates()
            .iter()
            .map(|p| (p.attr, p.value))
            .collect();
        self.ensure_singletons(&eq_pairs);
        let best = self.best_table(&eq_pairs, sub.size());
        self.subs[id.index()] = Some(SubEntry {
            pred_ids,
            eq_pairs,
            size: sub.size() as u32,
            // Temporary; `place` overwrites it immediately.
            place: Placement::Fallback { width: 0, slot: 0 },
            voted: false,
        });
        self.place(id, best);
        self.live += 1;
        self.bump_ops();
    }

    fn remove(&mut self, id: SubscriptionId) {
        assert!(
            self.subs[id.index()].is_some(),
            "removing unknown subscription {id}"
        );
        self.unplace(id);
        let entry = self.subs[id.index()].take().expect("entry exists");
        for pid in entry.pred_ids {
            self.index.release(pid);
        }
        self.live -= 1;
        self.bump_ops();
    }

    fn match_event(&mut self, event: &Event, out: &mut Vec<SubscriptionId>) {
        let t0 = Instant::now();
        if !self.stats_frozen {
            self.est.observe(event);
        }
        self.satisfied.clear();
        self.index
            .eval_into(event, &mut self.bits, &mut self.satisfied);
        let t1 = Instant::now();

        let before = out.len();
        let bits = std::mem::take(&mut self.bits);
        let checked = self.phase2(event, &bits, out);
        self.bits = bits;
        self.bits.clear();

        let matched = (out.len() - before) as u64;
        let phase1 = (t1 - t0).as_nanos() as u64;
        let phase2 = t1.elapsed().as_nanos() as u64;
        self.record_event(phase1, phase2, checked as u64, matched);
        self.bump_ops();
    }

    fn match_batch_into(&mut self, events: &[Event], out: &mut Vec<Vec<SubscriptionId>>) {
        out.resize_with(events.len(), Vec::new);
        out.truncate(events.len());
        let t0 = Instant::now();
        if !self.stats_frozen {
            for event in events {
                self.est.observe(event);
            }
        }
        let mut batch = std::mem::take(&mut self.batch);
        self.index.eval_batch_into(events, &mut batch);
        let t1 = Instant::now();
        // Attribute the amortised phase-1 cost evenly across the batch.
        let phase1 = ((t1 - t0).as_nanos() as u64) / (events.len().max(1) as u64);

        for (i, (event, dst)) in events.iter().zip(out.iter_mut()).enumerate() {
            dst.clear();
            let tm = Instant::now();
            self.index.materialize(&mut batch, i);
            let phase1_i = phase1 + tm.elapsed().as_nanos() as u64;
            let t2 = Instant::now();
            let checked = self.phase2(event, batch.bits(i), dst);
            batch.clear_event(i);
            let phase2 = t2.elapsed().as_nanos() as u64;
            self.record_event(phase1_i, phase2, checked as u64, dst.len() as u64);
            self.bump_ops();
        }
        self.batch = batch;
    }

    fn len(&self) -> usize {
        self.live
    }

    fn finalize(&mut self) {
        if self.mode == Mode::Static {
            self.reoptimize(&GreedyConfig::default());
        }
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn heap_bytes(&self) -> usize {
        let tables: usize = self.tables.iter().flatten().map(|t| t.heap_bytes()).sum();
        let entries: usize = self
            .subs
            .iter()
            .flatten()
            .map(|e| e.pred_ids.capacity() * 4 + e.eq_pairs.capacity() * 24 + 48)
            .sum();
        tables + self.fallback.heap_bytes() + entries + self.bits.heap_bytes()
    }
}

impl crate::view::MatchView for ClusteredMatcher {
    /// Read-only matching. Unlike [`MatchEngine::match_event`] this neither
    /// feeds the selectivity estimator nor ticks the maintenance clock —
    /// under RCU the snapshot is immutable, so dynamic maintenance is driven
    /// solely by writer-side subscription churn (see DESIGN.md §12).
    fn match_view(
        &self,
        event: &Event,
        scratch: &mut crate::view::ViewScratch,
        out: &mut Vec<SubscriptionId>,
    ) {
        let t0 = Instant::now();
        scratch.satisfied.clear();
        self.index
            .eval_into(event, &mut scratch.bits, &mut scratch.satisfied);
        let t1 = Instant::now();

        let before = out.len();
        let checked = self.phase2_with(
            event,
            &scratch.bits,
            &mut scratch.view,
            &mut scratch.probe_buf,
            out,
        );
        scratch.bits.clear();

        let matched = (out.len() - before) as u64;
        let phase1 = (t1 - t0).as_nanos() as u64;
        let phase2 = t1.elapsed().as_nanos() as u64;
        EVENTS.inc();
        VERIFIED.add(checked as u64);
        MATCHED.add(matched);
        scratch.record_event(phase1, phase2, checked as u64, matched);
    }

    fn match_batch_view(
        &self,
        events: &[Event],
        scratch: &mut crate::view::ViewScratch,
        out: &mut Vec<Vec<SubscriptionId>>,
    ) {
        out.resize_with(events.len(), Vec::new);
        out.truncate(events.len());
        let t0 = Instant::now();
        let mut batch = std::mem::take(&mut scratch.batch);
        self.index.eval_batch_into(events, &mut batch);
        let t1 = Instant::now();
        // Attribute the amortised phase-1 cost evenly across the batch.
        let phase1 = ((t1 - t0).as_nanos() as u64) / (events.len().max(1) as u64);

        for (i, (event, dst)) in events.iter().zip(out.iter_mut()).enumerate() {
            dst.clear();
            let tm = Instant::now();
            self.index.materialize(&mut batch, i);
            let phase1_i = phase1 + tm.elapsed().as_nanos() as u64;
            let t2 = Instant::now();
            let checked = self.phase2_with(
                event,
                batch.bits(i),
                &mut scratch.view,
                &mut scratch.probe_buf,
                dst,
            );
            batch.clear_event(i);
            let phase2 = t2.elapsed().as_nanos() as u64;
            EVENTS.inc();
            VERIFIED.add(checked as u64);
            MATCHED.add(dst.len() as u64);
            scratch.record_event(phase1_i, phase2, checked as u64, dst.len() as u64);
        }
        scratch.batch = batch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::Operator;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn sid(i: u32) -> SubscriptionId {
        SubscriptionId(i)
    }

    fn two_eq_sub(v0: i64, v1: i64) -> Subscription {
        Subscription::builder()
            .eq(a(0), v0)
            .eq(a(1), v1)
            .with(a(2), Operator::Lt, 100i64)
            .build()
            .unwrap()
    }

    #[test]
    fn basic_match_static_and_dynamic() {
        for mut m in [
            ClusteredMatcher::new_static(),
            ClusteredMatcher::new_dynamic(),
        ] {
            m.insert(sid(1), &two_eq_sub(1, 2));
            m.insert(sid(2), &two_eq_sub(1, 3));
            let e = Event::builder()
                .pair(a(0), 1i64)
                .pair(a(1), 2i64)
                .pair(a(2), 50i64)
                .build()
                .unwrap();
            let mut out = Vec::new();
            m.match_event(&e, &mut out);
            assert_eq!(out, vec![sid(1)], "{}", m.name());
        }
    }

    #[test]
    fn singleton_tables_created_lazily() {
        let mut m = ClusteredMatcher::new_dynamic();
        m.insert(sid(1), &two_eq_sub(1, 2));
        let summary = m.table_summary();
        assert_eq!(summary.len(), 2, "one singleton per equality attribute");
        assert!(summary.iter().all(|(s, _, _)| s.len() == 1));
        // The subscription lives in exactly one of them.
        let total: usize = summary.iter().map(|(_, p, _)| p).sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn fallback_for_inequality_only() {
        let mut m = ClusteredMatcher::new_dynamic();
        let s = Subscription::builder()
            .with(a(0), Operator::Ge, 5i64)
            .build()
            .unwrap();
        m.insert(sid(1), &s);
        let mut out = Vec::new();
        m.match_event(
            &Event::builder().pair(a(0), 6i64).build().unwrap(),
            &mut out,
        );
        assert_eq!(out, vec![sid(1)]);
        m.remove(sid(1));
        assert!(m.is_empty());
    }

    #[test]
    fn static_finalize_builds_pair_tables() {
        let mut m = ClusteredMatcher::new_static();
        // A big population sharing the equality schema {0, 1}: after the
        // greedy pass a pair table should exist and hold everyone. The
        // population must be large enough that the expected saving beats the
        // honest per-event probe overhead of one more table (~75 K_c units).
        let mut id = 0u32;
        for v0 in 0..20i64 {
            for v1 in 0..20i64 {
                for _ in 0..3 {
                    m.insert(sid(id), &two_eq_sub(v0, v1));
                    id += 1;
                }
            }
        }
        // Feed uniform events so selectivities are realistic.
        let mut out = Vec::new();
        for i in 0..200i64 {
            let e = Event::builder()
                .pair(a(0), i % 20)
                .pair(a(1), (i / 3) % 20)
                .pair(a(2), 5i64)
                .build()
                .unwrap();
            m.match_event(&e, &mut out);
        }
        m.finalize();
        let has_pair = m
            .table_summary()
            .iter()
            .any(|(s, p, _)| s.len() == 2 && *p > 0);
        assert!(has_pair, "tables: {:?}", m.table_summary());

        // Matching still correct after the rebuild.
        out.clear();
        let e = Event::builder()
            .pair(a(0), 3i64)
            .pair(a(1), 4i64)
            .pair(a(2), 5i64)
            .build()
            .unwrap();
        m.match_event(&e, &mut out);
        assert_eq!(out.len(), 3, "three identical subscriptions per value cell");
    }

    #[test]
    fn dynamic_maintenance_creates_tables_under_load() {
        let mut m = ClusteredMatcher::new_dynamic_with(DynamicConfig {
            period: 512,
            bm_max: 4.0,
            b_create: 50,
            b_delete: 0,
            max_schema_len: 2,
            min_gain: 0.0,
            decay_stats: false,
        });
        // 400 subscriptions all with eq on attrs {0,1}, few distinct values:
        // singleton clusters get large and ν is high → margin explodes.
        let mut id = 0u32;
        for v0 in 0..2i64 {
            for v1 in 0..2i64 {
                for _ in 0..100 {
                    m.insert(sid(id), &two_eq_sub(v0, v1));
                    id += 1;
                }
            }
        }
        // Events keep selectivity estimates realistic and trigger passes.
        let mut out = Vec::new();
        for i in 0..1500i64 {
            let e = Event::builder()
                .pair(a(0), i % 2)
                .pair(a(1), (i / 2) % 2)
                .pair(a(2), 5i64)
                .build()
                .unwrap();
            out.clear();
            m.match_event(&e, &mut out);
            assert_eq!(out.len(), 100, "every event matches one value cell");
        }
        assert!(
            m.stats().tables_created > 0,
            "maintenance created multi-attribute tables: {:?}",
            m.table_summary()
        );
        let has_pair = m
            .table_summary()
            .iter()
            .any(|(s, p, _)| s.len() == 2 && *p > 0);
        assert!(has_pair, "tables: {:?}", m.table_summary());
    }

    #[test]
    fn weak_tables_are_deleted() {
        let mut m = ClusteredMatcher::new_dynamic_with(DynamicConfig {
            period: 100_000, // manual maintenance only
            bm_max: f64::INFINITY,
            b_create: usize::MAX,
            b_delete: 50,
            max_schema_len: 2,
            min_gain: 0.0,
            decay_stats: false,
        });
        // Two singleton tables; attr-1's table keeps only a handful of subs,
        // attr-0's table is big. Every sub has eq on both attrs, so each has
        // an alternative.
        for i in 0..100u32 {
            m.insert(sid(i), &two_eq_sub(i as i64, (i % 3) as i64));
        }
        let before = m.table_summary().len();
        assert_eq!(before, 2);
        m.run_maintenance();
        // One table must have fallen below 50 inhabitants and been emptied;
        // its subscriptions moved to the survivor. The empty singleton shell
        // is kept (natural clustering; recreating it on the next insert
        // would just thrash).
        let after = m.table_summary();
        let total: usize = after.iter().map(|(_, p, _)| p).sum();
        assert_eq!(total, 100, "survivor holds everyone: {after:?}");
        assert!(
            after.iter().any(|(_, p, _)| *p == 100),
            "single survivor table: {after:?}"
        );
        // Matching still works.
        let mut out = Vec::new();
        let e = Event::builder()
            .pair(a(0), 7i64)
            .pair(a(1), 1i64)
            .pair(a(2), 5i64)
            .build()
            .unwrap();
        m.match_event(&e, &mut out);
        assert_eq!(out, vec![sid(7)]);
    }

    #[test]
    fn removal_keeps_locations_consistent() {
        let mut m = ClusteredMatcher::new_dynamic();
        for i in 0..50u32 {
            m.insert(sid(i), &two_eq_sub((i % 5) as i64, (i % 7) as i64));
        }
        for i in (0..50u32).step_by(2) {
            m.remove(sid(i));
        }
        assert_eq!(m.len(), 25);
        let mut out = Vec::new();
        for i in (1..50u32).step_by(2) {
            out.clear();
            let e = Event::builder()
                .pair(a(0), (i % 5) as i64)
                .pair(a(1), (i % 7) as i64)
                .pair(a(2), 0i64)
                .build()
                .unwrap();
            m.match_event(&e, &mut out);
            assert!(out.contains(&sid(i)), "survivor {i} matches");
            assert!(out.iter().all(|s| s.0 % 2 == 1), "no ghost matches");
        }
    }

    #[test]
    fn duplicate_equality_on_same_attribute() {
        // price = 3 AND price = 5 is legal but unsatisfiable; the engine
        // must not crash and must never match.
        let mut m = ClusteredMatcher::new_dynamic();
        let s = Subscription::builder()
            .eq(a(0), 3i64)
            .eq(a(0), 5i64)
            .build()
            .unwrap();
        m.insert(sid(1), &s);
        let mut out = Vec::new();
        for v in [3i64, 5] {
            out.clear();
            let e = Event::builder().pair(a(0), v).build().unwrap();
            m.match_event(&e, &mut out);
            assert!(out.is_empty(), "value {v} cannot satisfy both predicates");
        }
        m.remove(sid(1));
    }
}
