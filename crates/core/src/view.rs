//! Read-only matching views: the `&self` face of the engines.
//!
//! [`MatchEngine::match_event`] takes `&mut self` because every engine keeps
//! per-event workhorse buffers (bit vector, satisfied list, hit counters)
//! inline. That shape is fine under a lock, but the RCU publish path shares
//! one immutable engine snapshot between many concurrent readers — mutation
//! must move out of the engine. [`MatchView`] is that split: all per-event
//! mutable state lives in a caller-owned [`ViewScratch`] (one per thread),
//! and the engine itself is only read.
//!
//! [`SnapshotEngine`] bundles both traits for the frozen snapshot engines
//! built by [`build_frozen`]; every in-tree engine implements it.

use crate::engine::{EngineKind, EngineStats, MatchEngine};
use pubsub_index::{Phase1Batch, PredicateBitVec, PredicateId};
use pubsub_types::{Event, SubscriptionId, Value};

/// Caller-owned per-thread scratch for [`MatchView`] matching: every buffer
/// an engine would otherwise mutate per event. One instance serves all
/// engine kinds (unused fields stay empty), so a thread needs exactly one
/// regardless of which snapshot it matches against.
#[derive(Debug, Default)]
pub struct ViewScratch {
    /// Phase-1 satisfied-predicate bit vector.
    pub(crate) bits: PredicateBitVec,
    /// Phase-1 satisfied-predicate list.
    pub(crate) satisfied: Vec<PredicateId>,
    /// Batched phase-1 scratch.
    pub(crate) batch: Phase1Batch,
    /// Counting phase 2: per-subscription hit counters.
    pub(crate) counts: Vec<u32>,
    /// Counting phase 2: epoch validity stamps for `counts`.
    pub(crate) stamps: Vec<u32>,
    /// Counting phase 2: current counter epoch.
    pub(crate) epoch: u32,
    /// Clustered phase 2: dense attr → value view of the event.
    pub(crate) view: Vec<Option<Value>>,
    /// Clustered phase 2: table-probe key buffer.
    pub(crate) probe_buf: Vec<Value>,
    /// Per-scratch engine counters, accumulated across every event this
    /// scratch matched. Snapshot readers fold these into a broker-level
    /// aggregate (the shared engine's own stats see no read traffic).
    pub stats: EngineStats,
}

impl ViewScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one event's timings and counts into the scratch stats and the
    /// global phase histograms (mirrors each engine's `record_event`).
    pub(crate) fn record_event(&mut self, phase1: u64, phase2: u64, checked: u64, matched: u64) {
        self.stats.events += 1;
        self.stats.subscriptions_checked += checked;
        self.stats.matches += matched;
        self.stats.phase1_nanos += phase1;
        self.stats.phase2_nanos += phase2;
        crate::engine::PHASE1_NANOS.record(phase1);
        crate::engine::PHASE2_NANOS.record(phase2);
    }
}

/// Read-only matching: like [`MatchEngine::match_event`] but `&self`, with
/// all per-event mutable state in the caller's [`ViewScratch`]. Safe to call
/// from many threads at once on one shared engine.
pub trait MatchView {
    /// Appends the ids of all subscriptions satisfied by `event` to `out`
    /// (no duplicates), using `scratch` for working memory. Ordering matches
    /// [`MatchEngine::match_event`] for the same engine.
    fn match_view(&self, event: &Event, scratch: &mut ViewScratch, out: &mut Vec<SubscriptionId>);

    /// Batched [`MatchView::match_view`]: fills `out` with one result vector
    /// per event (parallel to `events`; existing inner vectors are reused).
    fn match_batch_view(
        &self,
        events: &[Event],
        scratch: &mut ViewScratch,
        out: &mut Vec<Vec<SubscriptionId>>,
    ) {
        out.resize_with(events.len(), Vec::new);
        out.truncate(events.len());
        for (event, dst) in events.iter().zip(out.iter_mut()) {
            dst.clear();
            self.match_view(event, scratch, dst);
        }
    }
}

impl<T: MatchView + ?Sized> MatchView for Box<T> {
    fn match_view(&self, event: &Event, scratch: &mut ViewScratch, out: &mut Vec<SubscriptionId>) {
        (**self).match_view(event, scratch, out)
    }
    fn match_batch_view(
        &self,
        events: &[Event],
        scratch: &mut ViewScratch,
        out: &mut Vec<Vec<SubscriptionId>>,
    ) {
        (**self).match_batch_view(events, scratch, out)
    }
}

/// An engine usable behind an RCU snapshot: mutable builder API for the
/// writer side ([`MatchEngine`]) plus lock-free reads ([`MatchView`]).
pub trait SnapshotEngine: MatchEngine + MatchView + Send + Sync {}

impl<T: MatchEngine + MatchView + Send + Sync> SnapshotEngine for T {}

/// Builds a fresh engine of `kind` for use behind an RCU snapshot.
///
/// Same construction as [`EngineKind::build`] but typed for shared reads.
/// The sharded engine is deliberately absent: its fan-out/join worker
/// round-trip is superseded by callers matching directly against the shared
/// view from their own threads.
pub fn build_frozen(kind: EngineKind) -> Box<dyn SnapshotEngine> {
    match kind {
        EngineKind::Counting => Box::new(crate::counting::CountingMatcher::new()),
        EngineKind::Propagation => Box::new(crate::propagation::PropagationMatcher::new(false)),
        EngineKind::PropagationPrefetch => {
            Box::new(crate::propagation::PropagationMatcher::new(true))
        }
        EngineKind::Static => Box::new(crate::clustered::ClusteredMatcher::new_static()),
        EngineKind::Dynamic => Box::new(crate::clustered::ClusteredMatcher::new_dynamic()),
        EngineKind::BruteForce => Box::new(crate::brute::BruteForceMatcher::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::{AttrId, Operator, Subscription};

    fn sub(v: i64) -> Subscription {
        Subscription::builder()
            .eq(AttrId(0), v)
            .with(AttrId(1), Operator::Lt, 100i64)
            .build()
            .unwrap()
    }

    fn event(v: i64, w: i64) -> Event {
        Event::builder()
            .pair(AttrId(0), v)
            .pair(AttrId(1), w)
            .build()
            .unwrap()
    }

    /// Every engine's `&self` view agrees with its `&mut self` match on the
    /// same subscription set, event by event.
    #[test]
    fn view_matches_mutable_path_for_every_engine() {
        let kinds = [
            EngineKind::Counting,
            EngineKind::Propagation,
            EngineKind::PropagationPrefetch,
            EngineKind::Static,
            EngineKind::Dynamic,
            EngineKind::BruteForce,
        ];
        for kind in kinds {
            let mut frozen = build_frozen(kind);
            let mut baseline = build_frozen(kind);
            for i in 0..50u32 {
                let s = sub((i % 7) as i64);
                frozen.insert(SubscriptionId(i), &s);
                baseline.insert(SubscriptionId(i), &s);
            }
            frozen.finalize();
            baseline.finalize();

            let mut scratch = ViewScratch::new();
            for v in 0..10i64 {
                let e = event(v, v * 20);
                let mut via_view = Vec::new();
                frozen.match_view(&e, &mut scratch, &mut via_view);
                let mut via_mut = Vec::new();
                baseline.match_event(&e, &mut via_mut);
                via_view.sort_unstable();
                via_mut.sort_unstable();
                assert_eq!(via_view, via_mut, "engine {}", kind.label());
            }
            assert_eq!(scratch.stats.events, 10, "engine {}", kind.label());
        }
    }

    /// The batched view path agrees with the per-event view path.
    #[test]
    fn batch_view_matches_single_view() {
        for kind in EngineKind::PAPER_ENGINES {
            let mut frozen = build_frozen(kind);
            for i in 0..40u32 {
                frozen.insert(SubscriptionId(i), &sub((i % 5) as i64));
            }
            frozen.finalize();

            let events: Vec<Event> = (0..8i64).map(|v| event(v % 5, v * 10)).collect();
            let mut scratch = ViewScratch::new();
            let mut batched = Vec::new();
            frozen.match_batch_view(&events, &mut scratch, &mut batched);
            for (e, got) in events.iter().zip(&batched) {
                let mut single = Vec::new();
                frozen.match_view(e, &mut scratch, &mut single);
                let mut got = got.clone();
                got.sort_unstable();
                single.sort_unstable();
                assert_eq!(got, single, "engine {}", kind.label());
            }
        }
    }

    /// Many threads sharing one engine through `&self` produce identical,
    /// untorn results (the property the RCU publish path depends on).
    #[test]
    fn concurrent_views_are_consistent() {
        let mut engine = build_frozen(EngineKind::Counting);
        for i in 0..100u32 {
            engine.insert(SubscriptionId(i), &sub((i % 4) as i64));
        }
        let engine: &dyn SnapshotEngine = &*engine;
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                scope.spawn(move || {
                    let mut scratch = ViewScratch::new();
                    for _ in 0..200 {
                        let mut out = Vec::new();
                        engine.match_view(&event(t % 4, 0), &mut scratch, &mut out);
                        assert_eq!(out.len(), 25, "every 4th subscription matches");
                    }
                });
            }
        });
    }
}
