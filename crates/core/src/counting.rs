//! The counting algorithm — the paper's baseline (§5, NEONet-style).
//!
//! An association table maps each distinct predicate to the subscriptions
//! containing it. When an event arrives, phase 1 computes the satisfied
//! predicates; phase 2 walks their subscription lists and increments a hit
//! counter per subscription. A subscription matches when its counter reaches
//! its predicate count.
//!
//! Counters are "cleared" by an epoch stamp instead of a wipe: a counter is
//! valid only if its stamp equals the current event's epoch.

use crate::engine::{EngineStats, MatchEngine};
use pubsub_index::{Phase1Batch, PredicateBitVec, PredicateId, PredicateIndex};
use pubsub_types::metrics::Counter;
use pubsub_types::{Event, Subscription, SubscriptionId};
use std::time::Instant;

/// Events matched by the counting engine.
static EVENTS: Counter = Counter::new("core.counting.events");
/// Counter increments performed (candidate verifications).
static VERIFIED: Counter = Counter::new("core.counting.verified");
/// Subscriptions the counting engine reported as matches.
static MATCHED: Counter = Counter::new("core.counting.matched");

#[derive(Debug)]
struct SubEntry {
    /// Interned predicate ids, parallel to `positions`.
    pred_ids: Vec<PredicateId>,
    /// Position of this subscription inside each predicate's association
    /// list, for O(arity) removal.
    positions: Vec<u32>,
}

/// The counting matcher.
#[derive(Debug, Default)]
pub struct CountingMatcher {
    index: PredicateIndex,
    /// Association table: predicate id → subscriptions containing it.
    assoc: Vec<Vec<SubscriptionId>>,
    subs: Vec<Option<SubEntry>>,
    /// Predicate count per subscription id (0 = absent).
    arity: Vec<u32>,
    /// Hit counters with epoch validity stamps.
    counts: Vec<u32>,
    stamps: Vec<u32>,
    epoch: u32,
    // Per-event workhorse buffers.
    bits: PredicateBitVec,
    satisfied: Vec<PredicateId>,
    /// Reusable scratch for the batched phase-1 path.
    batch: Phase1Batch,
    live: usize,
    stats: EngineStats,
}

impl CountingMatcher {
    /// Creates an empty counting matcher.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure_sub_capacity(&mut self, id: SubscriptionId) {
        let need = id.index() + 1;
        if self.subs.len() < need {
            self.subs.resize_with(need, || None);
            self.arity.resize(need, 0);
            self.counts.resize(need, 0);
            self.stamps.resize(need, 0);
        }
    }

    fn ensure_assoc_capacity(&mut self, pid: PredicateId) {
        if self.assoc.len() <= pid.index() {
            self.assoc.resize_with(pid.index() + 1, Vec::new);
        }
    }

    /// Phase 2: walks the satisfied predicates' association lists, bumping
    /// epoch-stamped counters and reporting subscriptions whose counter
    /// reaches their arity. Returns the number of increments performed.
    fn phase2(&mut self, satisfied: &[PredicateId], out: &mut Vec<SubscriptionId>) -> u64 {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: invalidate everything explicitly once per
            // 2^32 events.
            self.stamps.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        let mut increments = 0u64;
        for &pid in satisfied {
            for &sid in &self.assoc[pid.index()] {
                let i = sid.index();
                increments += 1;
                let c = if self.stamps[i] == epoch {
                    self.counts[i] + 1
                } else {
                    self.stamps[i] = epoch;
                    1
                };
                self.counts[i] = c;
                if c == self.arity[i] {
                    out.push(sid);
                }
            }
        }
        increments
    }

    /// Phase 2 against caller-owned counters — the [`MatchView`] twin of
    /// [`CountingMatcher::phase2`], reading only the association table and
    /// arities from `self`.
    fn phase2_view(
        &self,
        satisfied: &[PredicateId],
        counts: &mut Vec<u32>,
        stamps: &mut Vec<u32>,
        epoch: &mut u32,
        out: &mut Vec<SubscriptionId>,
    ) -> u64 {
        counts.resize(self.arity.len(), 0);
        stamps.resize(self.arity.len(), 0);
        *epoch = epoch.wrapping_add(1);
        if *epoch == 0 {
            stamps.fill(0);
            *epoch = 1;
        }
        let epoch = *epoch;
        let mut increments = 0u64;
        for &pid in satisfied {
            for &sid in &self.assoc[pid.index()] {
                let i = sid.index();
                increments += 1;
                let c = if stamps[i] == epoch {
                    counts[i] + 1
                } else {
                    stamps[i] = epoch;
                    1
                };
                counts[i] = c;
                if c == self.arity[i] {
                    out.push(sid);
                }
            }
        }
        increments
    }

    /// Folds one event's timings and counts into the stats and metrics.
    fn record_event(&mut self, phase1: u64, phase2: u64, checked: u64, matched: u64) {
        self.stats.events += 1;
        self.stats.subscriptions_checked += checked;
        self.stats.matches += matched;
        self.stats.phase1_nanos += phase1;
        self.stats.phase2_nanos += phase2;
        EVENTS.inc();
        VERIFIED.add(checked);
        MATCHED.add(matched);
        crate::engine::PHASE1_NANOS.record(phase1);
        crate::engine::PHASE2_NANOS.record(phase2);
    }
}

impl MatchEngine for CountingMatcher {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn insert(&mut self, id: SubscriptionId, sub: &Subscription) {
        self.ensure_sub_capacity(id);
        assert!(
            self.subs[id.index()].is_none(),
            "duplicate subscription id {id}"
        );
        let mut pred_ids = Vec::with_capacity(sub.size());
        let mut positions = Vec::with_capacity(sub.size());
        for p in sub.predicates() {
            let pid = self.index.intern(*p);
            self.ensure_assoc_capacity(pid);
            positions.push(self.assoc[pid.index()].len() as u32);
            self.assoc[pid.index()].push(id);
            pred_ids.push(pid);
        }
        self.arity[id.index()] = sub.size() as u32;
        self.subs[id.index()] = Some(SubEntry {
            pred_ids,
            positions,
        });
        self.live += 1;
    }

    fn remove(&mut self, id: SubscriptionId) {
        let entry = self.subs[id.index()]
            .take()
            .expect("removing unknown subscription");
        for (&pid, &pos) in entry.pred_ids.iter().zip(&entry.positions) {
            let list = &mut self.assoc[pid.index()];
            list.swap_remove(pos as usize);
            if (pos as usize) < list.len() {
                // Fix the moved subscription's recorded position.
                let moved = list[pos as usize];
                let moved_entry = self.subs[moved.index()]
                    .as_mut()
                    .expect("moved subscription must be live");
                let k = moved_entry
                    .pred_ids
                    .iter()
                    .position(|&q| q == pid)
                    .expect("moved subscription references this predicate");
                moved_entry.positions[k] = pos;
            }
            self.index.release(pid);
        }
        self.arity[id.index()] = 0;
        self.live -= 1;
    }

    fn match_event(&mut self, event: &Event, out: &mut Vec<SubscriptionId>) {
        let t0 = Instant::now();
        self.satisfied.clear();
        self.index
            .eval_into(event, &mut self.bits, &mut self.satisfied);
        self.bits.clear(); // counting does not read the bit vector
        let t1 = Instant::now();

        let before = out.len();
        let satisfied = std::mem::take(&mut self.satisfied);
        let increments = self.phase2(&satisfied, out);
        self.satisfied = satisfied;

        let matched = (out.len() - before) as u64;
        let phase1 = (t1 - t0).as_nanos() as u64;
        let phase2 = t1.elapsed().as_nanos() as u64;
        self.record_event(phase1, phase2, increments, matched);
    }

    fn match_batch_into(&mut self, events: &[Event], out: &mut Vec<Vec<SubscriptionId>>) {
        out.resize_with(events.len(), Vec::new);
        out.truncate(events.len());
        let t0 = Instant::now();
        let mut batch = std::mem::take(&mut self.batch);
        self.index.eval_batch_into(events, &mut batch);
        let t1 = Instant::now();
        // Attribute the amortised phase-1 cost evenly across the batch.
        let phase1 = ((t1 - t0).as_nanos() as u64) / (events.len().max(1) as u64);

        for (i, dst) in out.iter_mut().enumerate() {
            dst.clear();
            let tm = Instant::now();
            self.index.materialize(&mut batch, i);
            let phase1_i = phase1 + tm.elapsed().as_nanos() as u64;
            let t2 = Instant::now();
            let increments = self.phase2(batch.satisfied(i), dst);
            batch.clear_event(i);
            let phase2 = t2.elapsed().as_nanos() as u64;
            self.record_event(phase1_i, phase2, increments, dst.len() as u64);
        }
        self.batch = batch;
    }

    fn len(&self) -> usize {
        self.live
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn heap_bytes(&self) -> usize {
        let assoc: usize = self.assoc.iter().map(|l| l.capacity() * 4).sum();
        let entries: usize = self
            .subs
            .iter()
            .flatten()
            .map(|e| e.pred_ids.capacity() * 4 + e.positions.capacity() * 4)
            .sum();
        assoc + entries + self.counts.capacity() * 4 + self.stamps.capacity() * 4
    }
}

impl crate::view::MatchView for CountingMatcher {
    fn match_view(
        &self,
        event: &Event,
        scratch: &mut crate::view::ViewScratch,
        out: &mut Vec<SubscriptionId>,
    ) {
        let t0 = Instant::now();
        scratch.satisfied.clear();
        self.index
            .eval_into(event, &mut scratch.bits, &mut scratch.satisfied);
        scratch.bits.clear(); // counting does not read the bit vector
        let t1 = Instant::now();

        let before = out.len();
        let increments = self.phase2_view(
            &scratch.satisfied,
            &mut scratch.counts,
            &mut scratch.stamps,
            &mut scratch.epoch,
            out,
        );

        let matched = (out.len() - before) as u64;
        let phase1 = (t1 - t0).as_nanos() as u64;
        let phase2 = t1.elapsed().as_nanos() as u64;
        EVENTS.inc();
        VERIFIED.add(increments);
        MATCHED.add(matched);
        scratch.record_event(phase1, phase2, increments, matched);
    }

    fn match_batch_view(
        &self,
        events: &[Event],
        scratch: &mut crate::view::ViewScratch,
        out: &mut Vec<Vec<SubscriptionId>>,
    ) {
        out.resize_with(events.len(), Vec::new);
        out.truncate(events.len());
        let t0 = Instant::now();
        let mut batch = std::mem::take(&mut scratch.batch);
        self.index.eval_batch_into(events, &mut batch);
        let t1 = Instant::now();
        // Attribute the amortised phase-1 cost evenly across the batch.
        let phase1 = ((t1 - t0).as_nanos() as u64) / (events.len().max(1) as u64);

        for (i, dst) in out.iter_mut().enumerate() {
            dst.clear();
            let tm = Instant::now();
            self.index.materialize(&mut batch, i);
            let phase1_i = phase1 + tm.elapsed().as_nanos() as u64;
            let t2 = Instant::now();
            let increments = self.phase2_view(
                batch.satisfied(i),
                &mut scratch.counts,
                &mut scratch.stamps,
                &mut scratch.epoch,
                dst,
            );
            batch.clear_event(i);
            let phase2 = t2.elapsed().as_nanos() as u64;
            EVENTS.inc();
            VERIFIED.add(increments);
            MATCHED.add(dst.len() as u64);
            scratch.record_event(phase1_i, phase2, increments, dst.len() as u64);
        }
        scratch.batch = batch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::{AttrId, Operator};

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn sid(i: u32) -> SubscriptionId {
        SubscriptionId(i)
    }

    #[test]
    fn counts_must_reach_arity() {
        let mut m = CountingMatcher::new();
        let s1 = Subscription::builder()
            .eq(a(0), 1i64)
            .eq(a(1), 2i64)
            .build()
            .unwrap();
        let s2 = Subscription::builder().eq(a(0), 1i64).build().unwrap();
        m.insert(sid(1), &s1);
        m.insert(sid(2), &s2);

        // Event satisfying only the first predicate of s1 (but all of s2).
        let e = Event::builder().pair(a(0), 1i64).build().unwrap();
        let mut out = Vec::new();
        m.match_event(&e, &mut out);
        assert_eq!(out, vec![sid(2)]);

        // Event satisfying both predicates of s1.
        let e = Event::builder()
            .pair(a(0), 1i64)
            .pair(a(1), 2i64)
            .build()
            .unwrap();
        out.clear();
        m.match_event(&e, &mut out);
        out.sort();
        assert_eq!(out, vec![sid(1), sid(2)]);
    }

    #[test]
    fn counters_do_not_leak_across_events() {
        let mut m = CountingMatcher::new();
        let s = Subscription::builder()
            .eq(a(0), 1i64)
            .eq(a(1), 2i64)
            .build()
            .unwrap();
        m.insert(sid(1), &s);
        let half1 = Event::builder().pair(a(0), 1i64).build().unwrap();
        let half2 = Event::builder().pair(a(1), 2i64).build().unwrap();
        let mut out = Vec::new();
        m.match_event(&half1, &mut out);
        m.match_event(&half2, &mut out);
        assert!(
            out.is_empty(),
            "two half-matching events must not add up to a match"
        );
    }

    #[test]
    fn removal_updates_association_lists() {
        let mut m = CountingMatcher::new();
        let shared = Subscription::builder().eq(a(0), 1i64).build().unwrap();
        m.insert(sid(1), &shared);
        m.insert(sid(2), &shared);
        m.insert(sid(3), &shared);
        // Removing the first forces the position fix-up of the swapped-in id.
        m.remove(sid(1));
        let e = Event::builder().pair(a(0), 1i64).build().unwrap();
        let mut out = Vec::new();
        m.match_event(&e, &mut out);
        out.sort();
        assert_eq!(out, vec![sid(2), sid(3)]);
        // And removing the moved one must still work (its position changed).
        m.remove(sid(3));
        out.clear();
        m.match_event(&e, &mut out);
        assert_eq!(out, vec![sid(2)]);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn inequality_predicates_are_counted_too() {
        let mut m = CountingMatcher::new();
        let s = Subscription::builder()
            .eq(a(0), 1i64)
            .with(a(1), Operator::Lt, 10i64)
            .with(a(1), Operator::Gt, 5i64)
            .build()
            .unwrap();
        m.insert(sid(1), &s);
        let hit = Event::builder()
            .pair(a(0), 1i64)
            .pair(a(1), 7i64)
            .build()
            .unwrap();
        let miss = Event::builder()
            .pair(a(0), 1i64)
            .pair(a(1), 12i64)
            .build()
            .unwrap();
        let mut out = Vec::new();
        m.match_event(&hit, &mut out);
        assert_eq!(out, vec![sid(1)]);
        out.clear();
        m.match_event(&miss, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn shared_predicates_are_interned_once() {
        let mut m = CountingMatcher::new();
        let s = Subscription::builder().eq(a(0), 1i64).build().unwrap();
        for i in 0..100 {
            m.insert(sid(i), &s);
        }
        assert_eq!(m.index.len(), 1, "one distinct predicate");
        assert_eq!(m.assoc[0].len(), 100);
    }
}
