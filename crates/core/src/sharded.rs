//! Subscription-sharded parallel matching with shard supervision.
//!
//! [`ShardedMatcher`] partitions the subscription set across `N` shards by a
//! hash of the [`SubscriptionId`]; each shard owns a complete, independent
//! engine of any [`EngineKind`] and runs on its own persistent worker thread.
//! An event matches the sharded engine iff it matches some shard, because the
//! shards partition the subscriptions and every paper engine is exact on the
//! subscriptions it holds — so correctness carries over shard-locally, and
//! the dynamic optimizer's statistics simply become shard-local statistics.
//!
//! # Execution model
//!
//! Each shard has a private bounded FIFO request channel; replies funnel into
//! one shared reply channel. Mutating operations that need no result
//! (`insert`/`remove`) are fire-and-forget, so bulk loading proceeds in
//! parallel across shards. `match_event` fans the event out to every shard
//! and blocks until all live shards reply, then merges the partial results
//! sorted by [`SubscriptionId`]. Because the caller blocks for the full
//! fan-in, the event is passed to workers by raw pointer — no per-event
//! clone.
//!
//! [`MatchEngine::match_batch_into`] ships a whole batch to each shard in a
//! single request, amortising the channel round-trip and thread wakeup over
//! the batch. Result buffers are recycled through an internal pool, so the
//! steady state allocates nothing.
//!
//! # Supervision & recovery
//!
//! Shard workers are *supervised, fallible components*. The matcher keeps an
//! authoritative per-shard subscription log (id → [`Subscription`]) beside
//! each worker; the log, not the worker's engine, is the source of truth for
//! the subscription set. When a worker's engine panics (a latent bug, an
//! injected fault, a `remove` of an unknown id), the panic is contained by
//! `catch_unwind` on the worker thread: the worker answers outstanding
//! requests with a `Panic` reply and drains its queue. The matcher detects
//! the crash at the next fan-in and **rebuilds** the shard: the dead thread
//! is joined, a fresh worker with a fresh engine is spawned, the log is
//! replayed into it, and a `Finalize` barrier (bounded by
//! [`ShardedConfig::rebuild_wait`]) confirms the replay landed. Replies are
//! tagged with a per-shard *epoch* so late replies from a previous
//! incarnation are recognised and discarded.
//!
//! An event whose match panics a worker is retried once against the rebuilt
//! shard; if it panics the shard *again* it is **quarantined** — counted,
//! remembered in a bounded ring ([`ShardHealth::last_quarantined`]) and
//! excluded from that shard's result — and the publish completes on the
//! remaining shards with a degraded [`MatchReport`]. A shard whose rebuild
//! itself fails (respawn error, replay panic, barrier timeout) is **sealed**:
//! taken out of service, skipped by fan-outs, and lazily revived at the next
//! synchronous operation.
//!
//! # Backpressure
//!
//! Request channels are bounded ([`ShardedConfig::queue_capacity`]).
//! Inserts, removes and log replay always block — bounded memory, and no
//! subscription is ever dropped. Match fan-outs follow the configured
//! [`Backpressure`] policy: `Block` waits for queue space, `Shed` skips the
//! congested shard and reports it in [`MatchReport::skipped_shards`], and
//! `ErrorFast` makes [`ShardedMatcher::try_match_event`] return
//! [`ShardError::Overloaded`] without matching (the infallible
//! [`MatchEngine::match_event`] path degrades `ErrorFast` to `Shed`).
//!
//! # Fault injection
//!
//! Workers consult the deterministic fault registry
//! ([`pubsub_types::faults`]) at named points — [`FAULT_WORKER_OP`] before
//! every request, [`FAULT_WORKER_MATCH`] before match requests only, and
//! [`FAULT_SPAWN`] at thread spawn — so chaos tests and the CLI `chaos`
//! command can force panics, state corruption and delays at exact operation
//! counts. With the `faults` cargo feature off (the default) every hook is
//! an inlined no-op.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pubsub_types::faults::{self, FaultAction};
use pubsub_types::metrics::{Counter, Histogram};
use pubsub_types::{AttrId, Event, FxHashMap, ShardError, Subscription, SubscriptionId};

use crate::engine::{EngineKind, EngineStats, MatchEngine};

/// Events pushed through the sharded fan-out (single and batched).
static EVENTS: Counter = Counter::new("core.sharded.events");
/// Match/batch requests fanned out to shard workers.
static FANOUT_REQUESTS: Counter = Counter::new("core.sharded.fanout_requests");
/// Fan-in joins completed (one per fan-out broadcast).
static JOINS: Counter = Counter::new("core.sharded.joins");
/// Batch sizes submitted to `match_batch_into` (events per batch).
static BATCH_SIZE: Histogram = Histogram::new("core.sharded.batch_size");
/// Requests enqueued per shard channel (fire-and-forget inserts/removes plus
/// fan-out traffic plus rebuild replay).
static QUEUED_REQUESTS: Counter = Counter::new("core.sharded.queued_requests");
/// Shard request-queue depth observed at each enqueue.
static QUEUE_DEPTH: Histogram = Histogram::new("core.sharded.queue_depth");
/// Worker panics observed by the supervisor.
static WORKER_PANICS: Counter = Counter::new("core.sharded.worker_panics");
/// Shard rebuild attempts (log replay into a fresh worker).
static SHARD_REBUILDS: Counter = Counter::new("core.sharded.shard_rebuilds");
/// Subscriptions replayed from shard logs during rebuilds.
static REPLAYED_SUBS: Counter = Counter::new("core.sharded.replayed_subscriptions");
/// Events quarantined after panicking a shard twice.
static QUARANTINED: Counter = Counter::new("core.sharded.quarantined_events");
/// Matches that completed without results from at least one shard.
static DEGRADED: Counter = Counter::new("core.sharded.degraded_matches");
/// Match requests shed by the `Shed`/downgraded-`ErrorFast` policies.
static SHED: Counter = Counter::new("core.sharded.shed_requests");
/// Shard spawns that failed and reduced the shard count.
static SPAWN_FALLBACKS: Counter = Counter::new("core.sharded.spawn_fallbacks");
/// Single-event retries against a freshly rebuilt shard.
static RETRIES: Counter = Counter::new("core.sharded.match_retries");
/// Shards sealed (taken out of service after a failed rebuild).
static SEALED: Counter = Counter::new("core.sharded.sealed_shards");

/// Fault point hit once per worker request (insert, remove, match, batch,
/// finalize, …). Lane = shard index.
pub const FAULT_WORKER_OP: &str = "core.sharded.worker.op";
/// Fault point hit once per match/batch request only — replay inserts during
/// a rebuild never advance its schedules. Lane = shard index.
pub const FAULT_WORKER_MATCH: &str = "core.sharded.worker.match";
/// Fault point hit once per worker thread spawn attempt. Lane = the spawn
/// attempt index (initial construction) or the shard index (rebuilds). Any
/// armed action makes the spawn fail.
pub const FAULT_SPAWN: &str = "core.sharded.spawn";

// The raw-pointer fan-out below shares `&Event` across threads.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Event>();
};

/// A borrowed `&[Event]` made sendable for the blocking fan-out/join
/// protocol.
///
/// # Safety
/// Only constructed inside the match paths, which do not return (or unwind)
/// before every worker holding a copy has sent its reply, and workers drop
/// the reference before replying. The pointee is therefore live for every
/// dereference. Replies from *previous* worker incarnations are filtered by
/// epoch and recycled without ever dereferencing an `EventsRef`.
#[derive(Clone, Copy)]
struct EventsRef {
    ptr: *const Event,
    len: usize,
}

unsafe impl Send for EventsRef {}

impl EventsRef {
    fn new(events: &[Event]) -> Self {
        Self {
            ptr: events.as_ptr(),
            len: events.len(),
        }
    }

    /// # Safety
    /// Caller must be inside the fan-out/join window described on the type.
    unsafe fn slice<'a>(&self) -> &'a [Event] {
        std::slice::from_raw_parts(self.ptr, self.len)
    }
}

/// Reusable per-shard result of a batched match: matches for event `i` live
/// at `flat[offsets[i - 1]..offsets[i]]` (with an implicit leading 0).
#[derive(Default)]
struct BatchBuf {
    flat: Vec<SubscriptionId>,
    offsets: Vec<usize>,
}

enum Request {
    Insert(SubscriptionId, Arc<Subscription>),
    Remove(SubscriptionId),
    Match(EventsRef, Vec<SubscriptionId>),
    MatchBatch(EventsRef, BatchBuf),
    Finalize,
    ResetStats,
    HeapBytes,
}

impl Request {
    /// Whether the matcher blocks on a reply for this request.
    fn wants_reply(&self) -> bool {
        !matches!(self, Request::Insert(..) | Request::Remove(..))
    }

    fn is_match(&self) -> bool {
        matches!(self, Request::Match(..) | Request::MatchBatch(..))
    }
}

/// Every reply carries the worker's `(shard, epoch)` identity so the
/// supervisor can discard replies from dead incarnations.
enum Response {
    Match {
        shard: usize,
        epoch: u64,
        out: Vec<SubscriptionId>,
        stats: EngineStats,
    },
    Batch {
        shard: usize,
        epoch: u64,
        buf: BatchBuf,
        stats: EngineStats,
    },
    Ack {
        shard: usize,
        epoch: u64,
        stats: EngineStats,
    },
    HeapBytes {
        shard: usize,
        epoch: u64,
        bytes: usize,
    },
    Panic {
        shard: usize,
        epoch: u64,
        msg: String,
    },
}

impl Response {
    fn shard(&self) -> usize {
        match self {
            Response::Match { shard, .. }
            | Response::Batch { shard, .. }
            | Response::Ack { shard, .. }
            | Response::HeapBytes { shard, .. }
            | Response::Panic { shard, .. } => *shard,
        }
    }

    fn epoch(&self) -> u64 {
        match self {
            Response::Match { epoch, .. }
            | Response::Batch { epoch, .. }
            | Response::Ack { epoch, .. }
            | Response::HeapBytes { epoch, .. }
            | Response::Panic { epoch, .. } => *epoch,
        }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Consults the fault registry before a request is handled and performs the
/// armed action, if any. Panics unwind into the worker's `catch_unwind`.
fn injected_fault(engine: &mut Box<dyn MatchEngine + Send>, shard: usize, is_match: bool) {
    // Hit both points unconditionally so each point's hit count depends only
    // on how often the point is reached, never on what another rule fired.
    let op = faults::hit(FAULT_WORKER_OP, shard);
    let mat = if is_match {
        faults::hit(FAULT_WORKER_MATCH, shard)
    } else {
        None
    };
    match op.or(mat) {
        None => {}
        Some(FaultAction::Delay(ms)) => std::thread::sleep(Duration::from_millis(ms)),
        Some(FaultAction::Panic) => panic!("injected fault: worker panic"),
        Some(FaultAction::Corrupt) => {
            // Damage the engine before unwinding: insert a junk subscription
            // that is not in the authoritative log (and may collide with a
            // live id), so resuming this engine instead of rebuilding from
            // the log would produce wrong matches.
            let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let junk = Subscription::builder()
                    .eq(AttrId(0), i64::MIN)
                    .build()
                    .expect("junk subscription is well-formed");
                engine.insert(SubscriptionId(1), &junk);
            }));
            panic!("injected fault: corrupted engine state");
        }
        // `Fail` is an I/O-site action (durability WAL); a worker has no
        // error channel to surface it on, so treat it like a panic — the
        // supervisor recovers the shard either way.
        Some(FaultAction::Fail) => panic!("injected fault: worker failure"),
    }
}

fn handle_request(
    engine: &mut Box<dyn MatchEngine + Send>,
    shard: usize,
    epoch: u64,
    req: Request,
    reply: &Sender<Response>,
    scratch: &mut Vec<Vec<SubscriptionId>>,
) {
    match req {
        Request::Insert(id, sub) => engine.insert(id, &sub),
        Request::Remove(id) => engine.remove(id),
        Request::Match(events, mut out) => {
            out.clear();
            // SAFETY: the matcher blocks in its join loop until this reply.
            let events = unsafe { events.slice() };
            engine.match_event(&events[0], &mut out);
            let stats = *engine.stats();
            let _ = reply.send(Response::Match {
                shard,
                epoch,
                out,
                stats,
            });
        }
        Request::MatchBatch(events, mut buf) => {
            buf.flat.clear();
            buf.offsets.clear();
            // SAFETY: the matcher blocks in its join loop until this reply.
            let events = unsafe { events.slice() };
            // One batched call (engines amortise phase 1 across the whole
            // batch), flattened into the reply buffer. `scratch` lives for
            // the worker's lifetime, so its inner vectors are reused across
            // batches — zero steady-state allocation in this loop.
            engine.match_batch_into(events, scratch);
            for dst in scratch.iter().take(events.len()) {
                buf.flat.extend_from_slice(dst);
                buf.offsets.push(buf.flat.len());
            }
            let stats = *engine.stats();
            let _ = reply.send(Response::Batch {
                shard,
                epoch,
                buf,
                stats,
            });
        }
        Request::Finalize => {
            engine.finalize();
            let stats = *engine.stats();
            let _ = reply.send(Response::Ack {
                shard,
                epoch,
                stats,
            });
        }
        Request::ResetStats => {
            engine.reset_stats();
            let stats = *engine.stats();
            let _ = reply.send(Response::Ack {
                shard,
                epoch,
                stats,
            });
        }
        Request::HeapBytes => {
            let bytes = engine.heap_bytes();
            let _ = reply.send(Response::HeapBytes {
                shard,
                epoch,
                bytes,
            });
        }
    }
}

fn run_worker(
    kind: EngineKind,
    shard: usize,
    epoch: u64,
    rx: Receiver<Request>,
    reply: Sender<Response>,
    depth: Arc<AtomicUsize>,
) {
    let mut engine = kind.build();
    // Per-worker batch scratch, reused across every MatchBatch request.
    let mut batch_scratch: Vec<Vec<SubscriptionId>> = Vec::new();
    while let Ok(req) = rx.recv() {
        depth.fetch_sub(1, Ordering::Relaxed);
        let wants_reply = req.wants_reply();
        let is_match = req.is_match();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            injected_fault(&mut engine, shard, is_match);
            handle_request(&mut engine, shard, epoch, req, &reply, &mut batch_scratch)
        }));
        if let Err(payload) = outcome {
            let msg = panic_message(payload);
            if wants_reply {
                let _ = reply.send(Response::Panic {
                    shard,
                    epoch,
                    msg: msg.clone(),
                });
            }
            // Crashed: keep draining so the matcher's sends never block on a
            // dead queue and every result-bearing request still gets exactly
            // one reply, until the supervisor closes the channel to rebuild.
            while let Ok(req) = rx.recv() {
                depth.fetch_sub(1, Ordering::Relaxed);
                if req.wants_reply() {
                    let _ = reply.send(Response::Panic {
                        shard,
                        epoch,
                        msg: msg.clone(),
                    });
                }
            }
            return;
        }
    }
}

/// Spawns one shard worker; `lane` feeds the [`FAULT_SPAWN`] injection point.
fn spawn_worker(
    kind: EngineKind,
    shard: usize,
    epoch: u64,
    capacity: usize,
    reply: &Sender<Response>,
    lane: usize,
) -> std::io::Result<(SyncSender<Request>, JoinHandle<()>, Arc<AtomicUsize>)> {
    if faults::hit(FAULT_SPAWN, lane).is_some() {
        return Err(std::io::Error::other(
            "injected fault: worker spawn failure",
        ));
    }
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity.max(1));
    let depth = Arc::new(AtomicUsize::new(0));
    let reply = reply.clone();
    let worker_depth = Arc::clone(&depth);
    let join = std::thread::Builder::new()
        .name(format!("shard-{shard}"))
        .spawn(move || run_worker(kind, shard, epoch, rx, reply, worker_depth))?;
    Ok((tx, join, depth))
}

/// What a fan-out does when a shard's bounded request queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backpressure {
    /// Wait for queue space (lossless, unbounded latency).
    #[default]
    Block,
    /// Skip the congested shard for this match and report it in
    /// [`MatchReport::skipped_shards`] (bounded latency, degraded result).
    Shed,
    /// Make [`ShardedMatcher::try_match_event`] fail with
    /// [`ShardError::Overloaded`] so the caller can back off. The infallible
    /// [`MatchEngine::match_event`] path degrades this policy to [`Shed`].
    ///
    /// [`Shed`]: Backpressure::Shed
    ErrorFast,
}

impl std::fmt::Display for Backpressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backpressure::Block => "block",
            Backpressure::Shed => "shed",
            Backpressure::ErrorFast => "error-fast",
        })
    }
}

impl std::str::FromStr for Backpressure {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(match s {
            "block" => Backpressure::Block,
            "shed" => Backpressure::Shed,
            "error-fast" | "error_fast" | "errorfast" => Backpressure::ErrorFast,
            other => return Err(format!("unknown backpressure policy: {other}")),
        })
    }
}

/// Tunables for [`ShardedMatcher`] supervision and overload control.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Bound of each shard's request queue.
    pub queue_capacity: usize,
    /// Policy applied when a match fan-out finds a shard queue full.
    pub backpressure: Backpressure,
    /// How long a rebuild waits for the replay barrier before sealing the
    /// shard.
    pub rebuild_wait: Duration,
    /// How many recently quarantined events [`ShardHealth::last_quarantined`]
    /// retains.
    pub quarantine_ring: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            backpressure: Backpressure::Block,
            rebuild_wait: Duration::from_secs(10),
            quarantine_ring: 8,
        }
    }
}

/// An event that panicked the same shard twice and was taken out of
/// circulation.
#[derive(Debug, Clone)]
pub struct QuarantinedEvent {
    /// Shard the event crashed (twice).
    pub shard: usize,
    /// The poison event itself.
    pub event: Event,
}

/// Cumulative robustness counters of one [`ShardedMatcher`] (all counters
/// are totals since construction, not gauges).
#[derive(Debug, Clone, Default)]
pub struct ShardHealth {
    /// Worker panics observed by the supervisor.
    pub worker_panics: u64,
    /// Shard rebuild attempts (each replays the shard's subscription log
    /// into a fresh worker).
    pub shard_rebuilds: u64,
    /// Subscriptions replayed from logs across all rebuilds.
    pub replayed_subscriptions: u64,
    /// Events quarantined after panicking a shard twice.
    pub quarantined_events: u64,
    /// Matches that completed without results from at least one shard.
    pub degraded_matches: u64,
    /// Match requests dropped by the `Shed` backpressure policy.
    pub shed_requests: u64,
    /// Worker spawns that failed during construction, reducing the shard
    /// count below the requested one.
    pub spawn_fallbacks: u64,
    /// Times a shard was sealed (taken out of service by a failed rebuild).
    pub sealed_shards: u64,
    /// Most recent quarantined events, oldest first (bounded by
    /// [`ShardedConfig::quarantine_ring`]).
    pub last_quarantined: Vec<QuarantinedEvent>,
    /// Message of the most recent worker panic.
    pub last_panic: Option<String>,
}

/// Outcome of a supervised match: which shards contributed no result.
///
/// An empty report (`!is_degraded()`) means the match is exact. A degraded
/// report still contains every match from the responsive shards — shards
/// partition the subscriptions, so missing shards can only lose matches,
/// never corrupt the ones reported.
#[derive(Debug, Clone, Default)]
pub struct MatchReport {
    /// Shards that contributed nothing: sealed, shed by backpressure, or
    /// crashed and not recovered in time. Sorted, duplicate-free.
    pub skipped_shards: Vec<usize>,
    /// Events quarantined during this match.
    pub quarantined: u64,
}

impl MatchReport {
    /// `true` when some shard contributed no result, i.e. the match may be
    /// missing subscriptions.
    pub fn is_degraded(&self) -> bool {
        !self.skipped_shards.is_empty() || self.quarantined > 0
    }
}

struct ShardHandle {
    tx: Option<SyncSender<Request>>,
    join: Option<JoinHandle<()>>,
    /// Incarnation counter; bumped on every rebuild/seal so replies from
    /// dead workers are recognisably stale.
    epoch: u64,
    /// Out of service after a failed rebuild; revived lazily.
    sealed: bool,
    /// Requests currently queued (shared with the worker).
    depth: Arc<AtomicUsize>,
    /// Authoritative subscription set of this shard, replayed on rebuild.
    log: FxHashMap<SubscriptionId, Arc<Subscription>>,
}

/// Result of `fan_out`: current-epoch replies plus the shards that crashed,
/// were skipped, or triggered `ErrorFast` overload.
struct FanOut {
    replies: Vec<Response>,
    crashed: Vec<usize>,
    skipped: Vec<usize>,
    overload: Option<ShardError>,
}

enum RetryOutcome {
    Matched(Vec<SubscriptionId>, EngineStats),
    Quarantined,
    Skipped,
}

/// A matching engine that partitions subscriptions across `N` independent
/// shard engines running on supervised persistent worker threads.
///
/// See the [module docs](crate::sharded) for the execution, supervision and
/// backpressure models. Unlike the single-threaded engines, `match_event`
/// output is sorted by [`SubscriptionId`], so results are identical for
/// every shard count.
///
/// `stats()` aggregates shard counters (`events` counts events once, not
/// once per shard; phase timers sum CPU time across shards and so can exceed
/// wall clock). Snapshots are refreshed at every synchronous operation
/// (match, finalize, reset), so maintenance work done by fire-and-forget
/// inserts appears once the next synchronous call completes. Robustness
/// counters are reported by [`ShardedMatcher::health`].
pub struct ShardedMatcher {
    shards: Vec<ShardHandle>,
    reply_tx: Sender<Response>,
    reply_rx: Receiver<Response>,
    inner: EngineKind,
    config: ShardedConfig,
    /// Locally tracked: total live subscriptions (= sum of log sizes).
    len: usize,
    /// Last stats snapshot received from each shard.
    shard_stats: Vec<EngineStats>,
    /// Events seen by the sharded engine itself (each shard also counts
    /// every event; the aggregate must not multiply by `N`).
    events_seen: u64,
    /// Aggregate of `shard_stats`, kept current so `stats()` can borrow it.
    agg: EngineStats,
    /// Robustness counters, exposed via [`ShardedMatcher::health`].
    health: ShardHealth,
    /// Recycled single-event result buffers.
    spare_bufs: Vec<Vec<SubscriptionId>>,
    /// Recycled batched result buffers.
    spare_batches: Vec<BatchBuf>,
    /// Recycled per-fan-out sent mask.
    scratch_sent: Vec<bool>,
}

impl ShardedMatcher {
    /// Creates a sharded engine with `shards` workers, each owning a fresh
    /// engine of kind `inner`, under the default [`ShardedConfig`].
    /// `shards` is clamped to at least 1.
    pub fn new(inner: EngineKind, shards: usize) -> Self {
        Self::with_config(inner, shards, ShardedConfig::default())
    }

    /// Creates a sharded engine with an explicit [`ShardedConfig`].
    ///
    /// Spawn failures do not abort construction: a shard whose worker thread
    /// cannot be spawned is dropped and the matcher continues with fewer
    /// shards (counted in [`ShardHealth::spawn_fallbacks`]).
    ///
    /// # Panics
    /// Panics only if *every* spawn attempt fails, because a matcher with
    /// zero shards cannot make progress.
    pub fn with_config(inner: EngineKind, shards: usize, config: ShardedConfig) -> Self {
        let requested = shards.max(1);
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        let mut handles: Vec<ShardHandle> = Vec::with_capacity(requested);
        let mut spawn_fallbacks = 0u64;
        for attempt in 0..requested {
            let shard = handles.len();
            match spawn_worker(inner, shard, 0, config.queue_capacity, &reply_tx, attempt) {
                Ok((tx, join, depth)) => handles.push(ShardHandle {
                    tx: Some(tx),
                    join: Some(join),
                    epoch: 0,
                    sealed: false,
                    depth,
                    log: FxHashMap::default(),
                }),
                Err(_) => {
                    spawn_fallbacks += 1;
                    SPAWN_FALLBACKS.inc();
                }
            }
        }
        assert!(
            !handles.is_empty(),
            "all {requested} shard worker spawns failed"
        );
        let n = handles.len();
        Self {
            shards: handles,
            reply_tx,
            reply_rx,
            inner,
            config,
            len: 0,
            shard_stats: vec![EngineStats::default(); n],
            events_seen: 0,
            agg: EngineStats::default(),
            health: ShardHealth {
                spawn_fallbacks,
                ..ShardHealth::default()
            },
            spare_bufs: Vec::new(),
            spare_batches: Vec::new(),
            scratch_sent: Vec::new(),
        }
    }

    /// Creates a sharded engine with one shard per available hardware
    /// thread.
    pub fn with_default_shards(inner: EngineKind) -> Self {
        Self::new(inner, default_shards())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The engine kind each shard runs.
    pub fn inner_kind(&self) -> EngineKind {
        self.inner
    }

    /// The supervision/backpressure configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Snapshot of the cumulative robustness counters.
    pub fn health(&self) -> ShardHealth {
        self.health.clone()
    }

    /// Number of shards currently sealed (out of service).
    pub fn sealed_shard_count(&self) -> usize {
        self.shards.iter().filter(|s| s.sealed).count()
    }

    /// Which shard owns `id` (SplitMix64 finalizer over the raw id).
    fn shard_of(&self, id: SubscriptionId) -> usize {
        let mut z = (id.0 as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z ^ (z >> 31)) % self.shards.len() as u64) as usize
    }

    /// Records an enqueue on `depth` and the queue-depth metrics.
    fn note_send(depth: &AtomicUsize) {
        let d = depth.fetch_add(1, Ordering::Relaxed) + 1;
        QUEUED_REQUESTS.inc();
        QUEUE_DEPTH.record(d as u64);
    }

    /// Blocking send to one live shard. Returns `false` (instead of
    /// panicking) if the shard has no channel; crashed workers keep draining
    /// their queue, so a send to a live channel never fails.
    fn send_plain(&self, shard: usize, req: Request) -> bool {
        let handle = &self.shards[shard];
        match &handle.tx {
            Some(tx) => {
                Self::note_send(&handle.depth);
                if tx.send(req).is_err() {
                    handle.depth.fetch_sub(1, Ordering::Relaxed);
                    false
                } else {
                    true
                }
            }
            None => false,
        }
    }

    /// Returns a request's buffer to the recycling pools.
    fn recycle_request(&mut self, req: Request) {
        match req {
            Request::Match(_, buf) => self.spare_bufs.push(buf),
            Request::MatchBatch(_, buf) => self.spare_batches.push(buf),
            _ => {}
        }
    }

    /// Returns a response's buffer to the recycling pools.
    fn recycle(&mut self, resp: Response) {
        match resp {
            Response::Match { out, .. } => self.spare_bufs.push(out),
            Response::Batch { buf, .. } => self.spare_batches.push(buf),
            _ => {}
        }
    }

    /// Recomputes the aggregate stats from the per-shard snapshots.
    fn refresh_aggregate(&mut self) {
        let mut agg = EngineStats::default();
        for s in &self.shard_stats {
            agg.phase1_nanos += s.phase1_nanos;
            agg.phase2_nanos += s.phase2_nanos;
            agg.subscriptions_checked += s.subscriptions_checked;
            agg.matches += s.matches;
            agg.tables_created += s.tables_created;
            agg.tables_deleted += s.tables_deleted;
            agg.subscription_moves += s.subscription_moves;
        }
        agg.events = self.events_seen;
        self.agg = agg;
    }

    /// Takes `shard` out of service: closes its channel, joins the worker,
    /// and bumps the epoch so any straggler replies are stale.
    fn seal(&mut self, shard: usize) {
        let handle = &mut self.shards[shard];
        handle.tx = None;
        if let Some(join) = handle.join.take() {
            let _ = join.join();
        }
        handle.epoch += 1;
        if !handle.sealed {
            handle.sealed = true;
            self.health.sealed_shards += 1;
            SEALED.inc();
        }
    }

    /// Attempts one rebuild of every sealed shard. Called at the start of
    /// each synchronous operation so sealed shards self-revive as soon as
    /// the environment allows a successful spawn + replay.
    fn revive_sealed(&mut self) {
        for shard in 0..self.shards.len() {
            if self.shards[shard].sealed {
                let _ = self.rebuild_shard(shard);
            }
        }
    }

    /// Replaces `shard`'s worker with a fresh one and replays the
    /// authoritative log into it. Returns `true` on success; on failure the
    /// shard is sealed and `false` is returned.
    fn rebuild_shard(&mut self, shard: usize) -> bool {
        self.health.shard_rebuilds += 1;
        SHARD_REBUILDS.inc();
        // Retire the old incarnation: closing the channel ends its drain
        // loop; the epoch bump marks its in-flight replies stale.
        {
            let handle = &mut self.shards[shard];
            handle.tx = None;
            if let Some(join) = handle.join.take() {
                let _ = join.join();
            }
            handle.epoch += 1;
            handle.sealed = false;
        }
        let epoch = self.shards[shard].epoch;
        let (tx, join, depth) = match spawn_worker(
            self.inner,
            shard,
            epoch,
            self.config.queue_capacity,
            &self.reply_tx,
            shard,
        ) {
            Ok(spawned) => spawned,
            Err(_) => {
                self.seal(shard);
                return false;
            }
        };
        {
            let handle = &mut self.shards[shard];
            handle.tx = Some(tx.clone());
            handle.join = Some(join);
            handle.depth = Arc::clone(&depth);
        }
        // Replay the log. Replay sends always block: the queue bound caps
        // memory and no subscription may be dropped.
        let mut replayed = 0u64;
        let mut send_failed = false;
        for (&id, sub) in &self.shards[shard].log {
            Self::note_send(&depth);
            if tx.send(Request::Insert(id, Arc::clone(sub))).is_err() {
                send_failed = true;
                break;
            }
            replayed += 1;
        }
        // Barrier: a Finalize reply proves the replay landed (and re-runs
        // the static optimizer where the inner engine has one). Bounded
        // wait; on timeout or a replay panic the shard is sealed instead of
        // wedging the publish path.
        if !send_failed {
            Self::note_send(&depth);
            send_failed = tx.send(Request::Finalize).is_err();
        }
        // The worker's recv loop only observes disconnection once every
        // sender is gone, and seal() joins the thread — so this local sender
        // must die before any of the seal() calls below.
        drop(tx);
        self.health.replayed_subscriptions += replayed;
        REPLAYED_SUBS.add(replayed);
        if send_failed {
            self.seal(shard);
            return false;
        }
        loop {
            match self.reply_rx.recv_timeout(self.config.rebuild_wait) {
                Ok(resp) => {
                    if resp.shard() != shard || resp.epoch() != epoch {
                        self.recycle(resp);
                        continue;
                    }
                    match resp {
                        Response::Ack { stats, .. } => {
                            self.shard_stats[shard] = stats;
                            return true;
                        }
                        Response::Panic { msg, .. } => {
                            self.health.worker_panics += 1;
                            WORKER_PANICS.inc();
                            self.health.last_panic = Some(msg);
                            self.seal(shard);
                            return false;
                        }
                        other => self.recycle(other),
                    }
                }
                Err(_) => {
                    self.seal(shard);
                    return false;
                }
            }
        }
    }

    /// Fans a result-bearing request to every live shard via `make`, then
    /// joins all current-epoch replies. Crashed shards are reported, not
    /// re-raised. `policed` applies the backpressure policy (match paths);
    /// un-policed fan-outs (finalize, reset) always block.
    fn fan_out(
        &mut self,
        mut make: impl FnMut(&mut Self) -> Request,
        policed: bool,
        error_fast: bool,
    ) -> FanOut {
        let n = self.shards.len();
        let mut sent = std::mem::take(&mut self.scratch_sent);
        sent.clear();
        sent.resize(n, false);
        let mut skipped = Vec::new();
        let mut overload = None;
        let mut sent_count = 0usize;
        for (shard, shard_sent) in sent.iter_mut().enumerate() {
            if self.shards[shard].sealed || self.shards[shard].tx.is_none() {
                skipped.push(shard);
                continue;
            }
            let req = make(self);
            debug_assert!(req.wants_reply());
            let use_try = policed && self.config.backpressure != Backpressure::Block;
            if !use_try {
                if self.send_plain(shard, req) {
                    *shard_sent = true;
                    sent_count += 1;
                } else {
                    skipped.push(shard);
                }
                continue;
            }
            // Shed / ErrorFast: never wait on a full queue.
            let handle = &self.shards[shard];
            let tx = handle.tx.as_ref().expect("checked above");
            Self::note_send(&handle.depth);
            match tx.try_send(req) {
                Ok(()) => {
                    *shard_sent = true;
                    sent_count += 1;
                }
                Err(TrySendError::Full(req)) => {
                    self.shards[shard].depth.fetch_sub(1, Ordering::Relaxed);
                    if error_fast && self.config.backpressure == Backpressure::ErrorFast {
                        overload.get_or_insert(ShardError::Overloaded { shard });
                    } else {
                        self.health.shed_requests += 1;
                        SHED.inc();
                    }
                    self.recycle_request(req);
                    skipped.push(shard);
                }
                Err(TrySendError::Disconnected(req)) => {
                    self.shards[shard].depth.fetch_sub(1, Ordering::Relaxed);
                    self.recycle_request(req);
                    skipped.push(shard);
                }
            }
        }
        FANOUT_REQUESTS.add(sent_count as u64);
        let mut replies = Vec::with_capacity(sent_count);
        let mut crashed = Vec::new();
        let mut received = 0usize;
        while received < sent_count {
            let resp = self
                .reply_rx
                .recv()
                .expect("matcher holds a reply sender, channel never closes");
            let shard = resp.shard();
            if !sent[shard] || resp.epoch() != self.shards[shard].epoch {
                self.recycle(resp);
                continue;
            }
            received += 1;
            if let Response::Panic { msg, .. } = resp {
                crashed.push(shard);
                self.health.worker_panics += 1;
                WORKER_PANICS.inc();
                self.health.last_panic = Some(msg);
            } else {
                replies.push(resp);
            }
        }
        JOINS.inc();
        self.scratch_sent = sent;
        FanOut {
            replies,
            crashed,
            skipped,
            overload,
        }
    }

    /// Re-issues a single-event match to a freshly rebuilt `shard`. A second
    /// panic marks the event poisonous: the shard is rebuilt once more and
    /// `Quarantined` is returned.
    fn retry_single(&mut self, shard: usize, events: EventsRef) -> RetryOutcome {
        let epoch = self.shards[shard].epoch;
        let buf = self.spare_bufs.pop().unwrap_or_default();
        if !self.send_plain(shard, Request::Match(events, buf)) {
            return RetryOutcome::Skipped;
        }
        FANOUT_REQUESTS.inc();
        loop {
            let resp = self
                .reply_rx
                .recv()
                .expect("matcher holds a reply sender, channel never closes");
            if resp.shard() != shard || resp.epoch() != epoch {
                self.recycle(resp);
                continue;
            }
            match resp {
                Response::Match { out, stats, .. } => return RetryOutcome::Matched(out, stats),
                Response::Panic { msg, .. } => {
                    self.health.worker_panics += 1;
                    WORKER_PANICS.inc();
                    self.health.last_panic = Some(msg);
                    let _ = self.rebuild_shard(shard);
                    return RetryOutcome::Quarantined;
                }
                other => self.recycle(other),
            }
        }
    }

    /// Records a poison event in the quarantine ring.
    fn quarantine(&mut self, shard: usize, event: Event) {
        self.health.quarantined_events += 1;
        QUARANTINED.inc();
        self.health
            .last_quarantined
            .push(QuarantinedEvent { shard, event });
        let cap = self.config.quarantine_ring.max(1);
        while self.health.last_quarantined.len() > cap {
            self.health.last_quarantined.remove(0);
        }
    }

    /// Fallible single-event match honouring the full backpressure policy:
    /// under [`Backpressure::ErrorFast`] a congested shard makes this return
    /// [`ShardError::Overloaded`] without matching. On success the
    /// [`MatchReport`] states which shards (if any) contributed no result.
    pub fn try_match_event(
        &mut self,
        event: &Event,
        out: &mut Vec<SubscriptionId>,
    ) -> Result<MatchReport, ShardError> {
        self.match_event_inner(event, out, true)
    }

    fn match_event_inner(
        &mut self,
        event: &Event,
        out: &mut Vec<SubscriptionId>,
        error_fast: bool,
    ) -> Result<MatchReport, ShardError> {
        self.revive_sealed();
        self.events_seen += 1;
        EVENTS.inc();
        let events = EventsRef::new(std::slice::from_ref(event));
        let merge_start = out.len();
        let fan = self.fan_out(
            |this| Request::Match(events, this.spare_bufs.pop().unwrap_or_default()),
            true,
            error_fast,
        );
        if let Some(err) = fan.overload {
            // Abort: recycle what already arrived and restore service on
            // crashed shards, but report nothing — the caller backs off.
            for resp in fan.replies {
                self.recycle(resp);
            }
            for shard in fan.crashed {
                let _ = self.rebuild_shard(shard);
            }
            out.truncate(merge_start);
            self.events_seen -= 1;
            return Err(err);
        }
        let mut report = MatchReport {
            skipped_shards: fan.skipped,
            quarantined: 0,
        };
        for resp in fan.replies {
            match resp {
                Response::Match {
                    shard,
                    out: part,
                    stats,
                    ..
                } => {
                    out.extend_from_slice(&part);
                    self.shard_stats[shard] = stats;
                    self.spare_bufs.push(part);
                }
                other => self.recycle(other),
            }
        }
        for shard in fan.crashed {
            RETRIES.inc();
            if !self.rebuild_shard(shard) {
                report.skipped_shards.push(shard);
                continue;
            }
            match self.retry_single(shard, events) {
                RetryOutcome::Matched(part, stats) => {
                    out.extend_from_slice(&part);
                    self.shard_stats[shard] = stats;
                    self.spare_bufs.push(part);
                }
                RetryOutcome::Quarantined => {
                    self.quarantine(shard, event.clone());
                    report.quarantined += 1;
                    report.skipped_shards.push(shard);
                }
                RetryOutcome::Skipped => report.skipped_shards.push(shard),
            }
        }
        report.skipped_shards.sort_unstable();
        report.skipped_shards.dedup();
        if report.is_degraded() {
            self.health.degraded_matches += 1;
            DEGRADED.inc();
        }
        // Deterministic merge: shards are disjoint, so sorting the
        // concatenation yields a duplicate-free, shard-count-independent
        // result.
        out[merge_start..].sort_unstable();
        self.refresh_aggregate();
        Ok(report)
    }

    fn match_batch_inner(
        &mut self,
        events: &[Event],
        out: &mut Vec<Vec<SubscriptionId>>,
    ) -> MatchReport {
        out.resize_with(events.len(), Vec::new);
        out.truncate(events.len());
        for dst in out.iter_mut() {
            dst.clear();
        }
        if events.is_empty() {
            return MatchReport::default();
        }
        self.revive_sealed();
        self.events_seen += events.len() as u64;
        EVENTS.add(events.len() as u64);
        BATCH_SIZE.record(events.len() as u64);
        let events_ref = EventsRef::new(events);
        let fan = self.fan_out(
            |this| Request::MatchBatch(events_ref, this.spare_batches.pop().unwrap_or_default()),
            true,
            false,
        );
        let mut report = MatchReport {
            skipped_shards: fan.skipped,
            quarantined: 0,
        };
        for resp in fan.replies {
            match resp {
                Response::Batch {
                    shard, buf, stats, ..
                } => {
                    let mut start = 0;
                    for (dst, &end) in out.iter_mut().zip(&buf.offsets) {
                        dst.extend_from_slice(&buf.flat[start..end]);
                        start = end;
                    }
                    self.shard_stats[shard] = stats;
                    self.spare_batches.push(buf);
                }
                other => self.recycle(other),
            }
        }
        // A crashed shard is retried event-by-event so the poison event can
        // be isolated and quarantined while its innocent neighbours still
        // contribute their matches.
        for shard in fan.crashed {
            RETRIES.inc();
            if !self.rebuild_shard(shard) {
                report.skipped_shards.push(shard);
                continue;
            }
            let mut shard_incomplete = false;
            for (i, event) in events.iter().enumerate() {
                let single = EventsRef::new(std::slice::from_ref(event));
                match self.retry_single(shard, single) {
                    RetryOutcome::Matched(part, stats) => {
                        out[i].extend_from_slice(&part);
                        self.shard_stats[shard] = stats;
                        self.spare_bufs.push(part);
                    }
                    RetryOutcome::Quarantined => {
                        self.quarantine(shard, event.clone());
                        report.quarantined += 1;
                        shard_incomplete = true;
                    }
                    RetryOutcome::Skipped => {
                        shard_incomplete = true;
                    }
                }
            }
            if shard_incomplete {
                report.skipped_shards.push(shard);
            }
        }
        report.skipped_shards.sort_unstable();
        report.skipped_shards.dedup();
        if report.is_degraded() {
            self.health.degraded_matches += 1;
            DEGRADED.inc();
        }
        for dst in out.iter_mut() {
            dst.sort_unstable();
        }
        self.refresh_aggregate();
        report
    }
}

impl MatchEngine for ShardedMatcher {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn insert(&mut self, id: SubscriptionId, sub: &Subscription) {
        let shard = self.shard_of(id);
        let sub = Arc::new(sub.clone());
        if self.shards[shard]
            .log
            .insert(id, Arc::clone(&sub))
            .is_none()
        {
            self.len += 1;
        }
        // A sealed shard has no worker; the log entry alone suffices — the
        // revival replay delivers it.
        if !self.shards[shard].sealed {
            self.send_plain(shard, Request::Insert(id, sub));
        }
    }

    fn remove(&mut self, id: SubscriptionId) {
        let shard = self.shard_of(id);
        if self.shards[shard].log.remove(&id).is_some() {
            self.len -= 1;
        }
        // Forwarded even when the log never held `id`: the engine contract
        // says unknown removes panic, and the supervisor turns that panic
        // into a rebuild instead of poisoning the caller.
        if !self.shards[shard].sealed {
            self.send_plain(shard, Request::Remove(id));
        }
    }

    fn match_event(&mut self, event: &Event, out: &mut Vec<SubscriptionId>) {
        // Infallible trait path: ErrorFast degrades to Shed, degraded
        // results are visible through `health()` and `shard_health()`.
        let _ = self.match_event_inner(event, out, false);
    }

    fn match_batch_into(&mut self, events: &[Event], out: &mut Vec<Vec<SubscriptionId>>) {
        let _ = self.match_batch_inner(events, out);
    }

    fn len(&self) -> usize {
        self.len
    }

    fn finalize(&mut self) {
        self.revive_sealed();
        let fan = self.fan_out(|_| Request::Finalize, false, false);
        for resp in fan.replies {
            match resp {
                Response::Ack { shard, stats, .. } => self.shard_stats[shard] = stats,
                other => self.recycle(other),
            }
        }
        // A rebuild ends in a Finalize barrier, so rebuilding a crashed
        // shard here *is* its finalize.
        for shard in fan.crashed {
            let _ = self.rebuild_shard(shard);
        }
        self.refresh_aggregate();
    }

    fn stats(&self) -> &EngineStats {
        &self.agg
    }

    fn reset_stats(&mut self) {
        self.revive_sealed();
        let fan = self.fan_out(|_| Request::ResetStats, false, false);
        for resp in fan.replies {
            match resp {
                Response::Ack { shard, stats, .. } => self.shard_stats[shard] = stats,
                other => self.recycle(other),
            }
        }
        for shard in fan.crashed {
            let _ = self.rebuild_shard(shard);
        }
        self.events_seen = 0;
        self.refresh_aggregate();
    }

    fn heap_bytes(&self) -> usize {
        // &self path: query live shards, skip sealed ones, never rebuild.
        // A crashed worker's Panic reply counts as received (contributing 0).
        let n = self.shards.len();
        let mut sent = vec![false; n];
        let mut sent_count = 0usize;
        let mut total = 0usize;
        for (shard, handle) in self.shards.iter().enumerate() {
            // The authoritative log is supervisor-side heap.
            total += handle.log.len()
                * (std::mem::size_of::<(SubscriptionId, Arc<Subscription>)>()
                    + std::mem::size_of::<Subscription>());
            total += handle
                .log
                .values()
                .map(|s| s.size() * std::mem::size_of::<pubsub_types::Predicate>())
                .sum::<usize>();
            if handle.sealed {
                continue;
            }
            if self.send_plain(shard, Request::HeapBytes) {
                sent[shard] = true;
                sent_count += 1;
            }
        }
        let mut received = 0usize;
        while received < sent_count {
            let resp = self
                .reply_rx
                .recv()
                .expect("matcher holds a reply sender, channel never closes");
            let shard = resp.shard();
            if !sent[shard] || resp.epoch() != self.shards[shard].epoch {
                continue; // stale; buffers cannot be recycled from &self
            }
            match resp {
                Response::HeapBytes { bytes, .. } => {
                    total += bytes;
                    received += 1;
                }
                Response::Panic { .. } => received += 1,
                _ => received += 1,
            }
        }
        total
    }

    fn shard_subscription_counts(&self) -> Option<Vec<usize>> {
        Some(self.shards.iter().map(|s| s.log.len()).collect())
    }

    fn shard_health(&self) -> Option<ShardHealth> {
        Some(self.health.clone())
    }
}

impl Drop for ShardedMatcher {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            shard.tx = None; // closing the channel stops the worker loop
        }
        for shard in &mut self.shards {
            if let Some(join) = shard.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// Default shard count: one per available hardware thread.
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::{AttrId, EventBuilder, SubscriptionBuilder};

    fn eq_sub(attr: u32, val: i64) -> Subscription {
        SubscriptionBuilder::default()
            .eq(AttrId(attr), val)
            .build()
            .unwrap()
    }

    fn event(pairs: &[(u32, i64)]) -> Event {
        let mut b = EventBuilder::default();
        for &(attr, val) in pairs {
            b = b.pair(AttrId(attr), val);
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_across_shards_sorted() {
        let mut m = ShardedMatcher::new(EngineKind::Counting, 3);
        for i in 0..64 {
            m.insert(SubscriptionId(i), &eq_sub(0, (i % 2) as i64));
        }
        m.finalize();
        let mut out = Vec::new();
        m.match_event(&event(&[(0, 0)]), &mut out);
        let want: Vec<SubscriptionId> = (0..64).step_by(2).map(SubscriptionId).collect();
        assert_eq!(out, want);
        assert_eq!(m.len(), 64);
        let counts = m.shard_subscription_counts().unwrap();
        assert_eq!(counts.len(), 3);
        assert_eq!(counts.iter().sum::<usize>(), 64);
        // 64 ids over 3 shards: the splitmix hash should not starve a shard.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn batch_agrees_with_single_events() {
        let mut m = ShardedMatcher::new(EngineKind::Dynamic, 4);
        for i in 0..40 {
            m.insert(SubscriptionId(i), &eq_sub(i % 4, (i % 3) as i64));
        }
        m.finalize();
        let events: Vec<Event> = (0..12).map(|i| event(&[(i % 4, i as i64 % 3)])).collect();
        let mut batch = Vec::new();
        m.match_batch_into(&events, &mut batch);
        assert_eq!(batch.len(), events.len());
        for (e, got) in events.iter().zip(&batch) {
            let mut single = Vec::new();
            m.match_event(e, &mut single);
            assert_eq!(got, &single);
        }
    }

    #[test]
    fn remove_then_match() {
        let mut m = ShardedMatcher::new(EngineKind::Propagation, 2);
        for i in 0..10 {
            m.insert(SubscriptionId(i), &eq_sub(0, 7));
        }
        for i in (0..10).step_by(2) {
            m.remove(SubscriptionId(i));
        }
        let mut out = Vec::new();
        m.match_event(&event(&[(0, 7)]), &mut out);
        let want: Vec<SubscriptionId> = (1..10).step_by(2).map(SubscriptionId).collect();
        assert_eq!(out, want);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn stats_count_events_once() {
        let mut m = ShardedMatcher::new(EngineKind::Counting, 4);
        m.insert(SubscriptionId(0), &eq_sub(0, 1));
        for _ in 0..5 {
            let mut out = Vec::new();
            m.match_event(&event(&[(0, 1)]), &mut out);
        }
        assert_eq!(m.stats().events, 5);
        assert_eq!(m.stats().matches, 5);
        m.reset_stats();
        assert_eq!(m.stats().events, 0);
        assert_eq!(m.stats().matches, 0);
    }

    #[test]
    fn worker_panic_self_heals_with_exact_results() {
        let mut m = ShardedMatcher::new(EngineKind::Counting, 2);
        for i in 0..32 {
            m.insert(SubscriptionId(i), &eq_sub(0, (i % 2) as i64));
        }
        // Unknown-id removes panic both shard engines. The old matcher
        // re-raised the panic at the next synchronous op; the supervised one
        // rebuilds from the log and answers exactly.
        m.remove(SubscriptionId(1000));
        m.remove(SubscriptionId(1001));
        m.remove(SubscriptionId(1002));
        let mut out = Vec::new();
        let report = m.try_match_event(&event(&[(0, 1)]), &mut out).unwrap();
        assert!(!report.is_degraded(), "rebuilt shards answer in full");
        let want: Vec<SubscriptionId> = (1..32).step_by(2).map(SubscriptionId).collect();
        assert_eq!(out, want);
        let health = m.health();
        assert!(health.shard_rebuilds >= 1);
        assert!(health.worker_panics >= 1);
        assert!(health.last_panic.is_some());
        assert_eq!(health.quarantined_events, 0, "events were innocent");
        assert_eq!(m.sealed_shard_count(), 0);
    }

    #[test]
    fn removed_id_stays_removed_across_rebuild() {
        let mut m = ShardedMatcher::new(EngineKind::Counting, 1);
        for i in 0..8 {
            m.insert(SubscriptionId(i), &eq_sub(0, 5));
        }
        m.remove(SubscriptionId(3));
        // Crash the only shard, forcing a rebuild from the log.
        m.remove(SubscriptionId(999));
        let mut out = Vec::new();
        m.match_event(&event(&[(0, 5)]), &mut out);
        assert!(!out.contains(&SubscriptionId(3)), "no resurrection");
        assert_eq!(out.len(), 7);
        assert!(m.health().shard_rebuilds >= 1);
    }

    #[test]
    fn healthy_matcher_reports_clean_health() {
        let mut m = ShardedMatcher::new(EngineKind::Dynamic, 3);
        m.insert(SubscriptionId(0), &eq_sub(0, 1));
        let mut out = Vec::new();
        let report = m.try_match_event(&event(&[(0, 1)]), &mut out).unwrap();
        assert!(!report.is_degraded());
        let health = m.shard_health().unwrap();
        assert_eq!(health.worker_panics, 0);
        assert_eq!(health.shard_rebuilds, 0);
        assert_eq!(health.quarantined_events, 0);
        assert_eq!(health.degraded_matches, 0);
        assert!(health.last_quarantined.is_empty());
    }

    #[test]
    fn backpressure_parses_and_displays() {
        for p in [
            Backpressure::Block,
            Backpressure::Shed,
            Backpressure::ErrorFast,
        ] {
            let parsed: Backpressure = p.to_string().parse().unwrap();
            assert_eq!(parsed, p);
        }
        assert!("nonsense".parse::<Backpressure>().is_err());
    }

    #[test]
    fn single_shard_behaves() {
        let mut m = ShardedMatcher::new(EngineKind::Static, 1);
        m.insert(SubscriptionId(3), &eq_sub(1, 2));
        m.finalize();
        let mut out = Vec::new();
        m.match_event(&event(&[(1, 2)]), &mut out);
        assert_eq!(out, vec![SubscriptionId(3)]);
        assert!(m.heap_bytes() > 0);
    }
}
