//! Subscription-sharded parallel matching.
//!
//! [`ShardedMatcher`] partitions the subscription set across `N` shards by a
//! hash of the [`SubscriptionId`]; each shard owns a complete, independent
//! engine of any [`EngineKind`] and runs on its own persistent worker thread.
//! An event matches the sharded engine iff it matches some shard, because the
//! shards partition the subscriptions and every paper engine is exact on the
//! subscriptions it holds — so correctness carries over shard-locally, and
//! the dynamic optimizer's statistics simply become shard-local statistics.
//!
//! # Execution model
//!
//! Each shard has a private FIFO request channel; replies funnel into one
//! shared reply channel. Mutating operations that need no result
//! (`insert`/`remove`) are fire-and-forget, so bulk loading proceeds in
//! parallel across shards. `match_event` fans the event out to every shard
//! and blocks until all `N` partial results arrive, then merges them sorted
//! by [`SubscriptionId`]. Because the caller blocks for the full fan-in, the
//! event is passed to workers by raw pointer — no per-event clone.
//!
//! [`MatchEngine::match_batch_into`] ships a whole batch to each shard in a
//! single request, amortising the channel round-trip and thread wakeup over
//! the batch. Result buffers are recycled through an internal pool, so the
//! steady state allocates nothing.
//!
//! # Panic handling
//!
//! A worker whose engine panics (e.g. `remove` of an unknown id) enters a
//! poisoned state: it answers every subsequent result-bearing request with
//! the captured panic message, which the matcher re-raises on the calling
//! thread — but only after every other in-flight shard reply has been
//! collected, so no worker can still be reading a borrowed event when the
//! caller unwinds. Panics from fire-and-forget operations therefore surface
//! at the next synchronous operation rather than immediately.

use std::panic::AssertUnwindSafe;
use std::sync::mpsc::{Receiver, Sender};
use std::thread::JoinHandle;

use pubsub_types::metrics::{Counter, Histogram};
use pubsub_types::{Event, Subscription, SubscriptionId};

use crate::engine::{EngineKind, EngineStats, MatchEngine};

/// Events pushed through the sharded fan-out (single and batched).
static EVENTS: Counter = Counter::new("core.sharded.events");
/// Match/batch requests fanned out to shard workers.
static FANOUT_REQUESTS: Counter = Counter::new("core.sharded.fanout_requests");
/// Fan-in joins completed (one per fan-out broadcast).
static JOINS: Counter = Counter::new("core.sharded.joins");
/// Batch sizes submitted to `match_batch_into` (events per batch).
static BATCH_SIZE: Histogram = Histogram::new("core.sharded.batch_size");
/// Requests enqueued per shard channel (queue-depth proxy: fire-and-forget
/// inserts/removes plus fan-out traffic).
static QUEUED_REQUESTS: Counter = Counter::new("core.sharded.queued_requests");

// The raw-pointer fan-out below shares `&Event` across threads.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Event>();
};

/// A borrowed `&[Event]` made sendable for the blocking fan-out/join
/// protocol.
///
/// # Safety
/// Only constructed inside `match_event`/`match_batch_into`, which do not
/// return (or unwind) before every worker holding a copy has sent its reply,
/// and workers drop the reference before replying. The pointee is therefore
/// live for every dereference.
#[derive(Clone, Copy)]
struct EventsRef {
    ptr: *const Event,
    len: usize,
}

unsafe impl Send for EventsRef {}

impl EventsRef {
    fn new(events: &[Event]) -> Self {
        Self {
            ptr: events.as_ptr(),
            len: events.len(),
        }
    }

    /// # Safety
    /// Caller must be inside the fan-out/join window described on the type.
    unsafe fn slice<'a>(&self) -> &'a [Event] {
        std::slice::from_raw_parts(self.ptr, self.len)
    }
}

/// Reusable per-shard result of a batched match: matches for event `i` live
/// at `flat[offsets[i - 1]..offsets[i]]` (with an implicit leading 0).
#[derive(Default)]
struct BatchBuf {
    flat: Vec<SubscriptionId>,
    offsets: Vec<usize>,
}

enum Request {
    Insert(SubscriptionId, Subscription),
    Remove(SubscriptionId),
    Match(EventsRef, Vec<SubscriptionId>),
    MatchBatch(EventsRef, BatchBuf),
    Finalize,
    ResetStats,
    HeapBytes,
}

impl Request {
    /// Whether the matcher blocks on a reply for this request.
    fn wants_reply(&self) -> bool {
        !matches!(self, Request::Insert(..) | Request::Remove(..))
    }
}

enum Response {
    Match {
        shard: usize,
        out: Vec<SubscriptionId>,
        stats: EngineStats,
    },
    Batch {
        shard: usize,
        buf: BatchBuf,
        stats: EngineStats,
    },
    Ack {
        shard: usize,
        stats: EngineStats,
    },
    HeapBytes {
        bytes: usize,
    },
    Panic {
        shard: usize,
        msg: String,
    },
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

fn handle_request(
    engine: &mut Box<dyn MatchEngine + Send>,
    shard: usize,
    req: Request,
    reply: &Sender<Response>,
) {
    match req {
        Request::Insert(id, sub) => engine.insert(id, &sub),
        Request::Remove(id) => engine.remove(id),
        Request::Match(events, mut out) => {
            out.clear();
            // SAFETY: the matcher blocks in its join loop until this reply.
            let events = unsafe { events.slice() };
            engine.match_event(&events[0], &mut out);
            let stats = *engine.stats();
            let _ = reply.send(Response::Match { shard, out, stats });
        }
        Request::MatchBatch(events, mut buf) => {
            buf.flat.clear();
            buf.offsets.clear();
            // SAFETY: the matcher blocks in its join loop until this reply.
            let events = unsafe { events.slice() };
            for event in events {
                // `match_event` appends, so `flat` accumulates across the
                // batch and `offsets` records each event's end position.
                engine.match_event(event, &mut buf.flat);
                buf.offsets.push(buf.flat.len());
            }
            let stats = *engine.stats();
            let _ = reply.send(Response::Batch { shard, buf, stats });
        }
        Request::Finalize => {
            engine.finalize();
            let stats = *engine.stats();
            let _ = reply.send(Response::Ack { shard, stats });
        }
        Request::ResetStats => {
            engine.reset_stats();
            let stats = *engine.stats();
            let _ = reply.send(Response::Ack { shard, stats });
        }
        Request::HeapBytes => {
            let bytes = engine.heap_bytes();
            let _ = reply.send(Response::HeapBytes { bytes });
        }
    }
}

fn run_worker(kind: EngineKind, shard: usize, rx: Receiver<Request>, reply: Sender<Response>) {
    let mut engine = kind.build();
    while let Ok(req) = rx.recv() {
        let wants_reply = req.wants_reply();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            handle_request(&mut engine, shard, req, &reply)
        }));
        if let Err(payload) = outcome {
            let msg = panic_message(payload);
            if wants_reply {
                let _ = reply.send(Response::Panic {
                    shard,
                    msg: msg.clone(),
                });
            }
            // Poisoned: keep draining so the matcher's sends never fail and
            // every result-bearing request still gets exactly one reply.
            while let Ok(req) = rx.recv() {
                if req.wants_reply() {
                    let _ = reply.send(Response::Panic {
                        shard,
                        msg: msg.clone(),
                    });
                }
            }
            return;
        }
    }
}

struct ShardHandle {
    tx: Option<Sender<Request>>,
    join: Option<JoinHandle<()>>,
}

/// A matching engine that partitions subscriptions across `N` independent
/// shard engines running on persistent worker threads.
///
/// See the [module docs](crate::sharded) for the execution model. Unlike the
/// single-threaded engines, `match_event` output is sorted by
/// [`SubscriptionId`], so results are identical for every shard count.
///
/// `stats()` aggregates shard counters (`events` counts events once, not
/// once per shard; phase timers sum CPU time across shards and so can exceed
/// wall clock). Snapshots are refreshed at every synchronous operation
/// (match, finalize, reset), so maintenance work done by fire-and-forget
/// inserts appears once the next synchronous call completes.
pub struct ShardedMatcher {
    shards: Vec<ShardHandle>,
    reply_rx: Receiver<Response>,
    inner: EngineKind,
    /// Locally tracked: total live subscriptions.
    len: usize,
    /// Locally tracked: live subscriptions per shard.
    shard_lens: Vec<usize>,
    /// Last stats snapshot received from each shard.
    shard_stats: Vec<EngineStats>,
    /// Events seen by the sharded engine itself (each shard also counts
    /// every event; the aggregate must not multiply by `N`).
    events_seen: u64,
    /// Aggregate of `shard_stats`, kept current so `stats()` can borrow it.
    agg: EngineStats,
    /// Recycled single-event result buffers.
    spare_bufs: Vec<Vec<SubscriptionId>>,
    /// Recycled batched result buffers.
    spare_batches: Vec<BatchBuf>,
}

impl ShardedMatcher {
    /// Creates a sharded engine with `shards` workers, each owning a fresh
    /// engine of kind `inner`. `shards` is clamped to at least 1.
    pub fn new(inner: EngineKind, shards: usize) -> Self {
        let n = shards.max(1);
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        let shards = (0..n)
            .map(|i| {
                let (tx, rx) = std::sync::mpsc::channel();
                let reply = reply_tx.clone();
                let join = std::thread::Builder::new()
                    .name(format!("shard-{i}"))
                    .spawn(move || run_worker(inner, i, rx, reply))
                    .expect("spawn shard worker");
                ShardHandle {
                    tx: Some(tx),
                    join: Some(join),
                }
            })
            .collect();
        Self {
            shards,
            reply_rx,
            inner,
            len: 0,
            shard_lens: vec![0; n],
            shard_stats: vec![EngineStats::default(); n],
            events_seen: 0,
            agg: EngineStats::default(),
            spare_bufs: Vec::new(),
            spare_batches: Vec::new(),
        }
    }

    /// Creates a sharded engine with one shard per available hardware
    /// thread.
    pub fn with_default_shards(inner: EngineKind) -> Self {
        Self::new(inner, default_shards())
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The engine kind each shard runs.
    pub fn inner_kind(&self) -> EngineKind {
        self.inner
    }

    /// Which shard owns `id` (SplitMix64 finalizer over the raw id).
    fn shard_of(&self, id: SubscriptionId) -> usize {
        let mut z = (id.0 as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ((z ^ (z >> 31)) % self.shards.len() as u64) as usize
    }

    /// Sends to one shard. Workers never exit while the matcher is alive
    /// (poisoned workers keep draining), so a send failure is a bug.
    fn send(&self, shard: usize, req: Request) {
        QUEUED_REQUESTS.inc();
        self.shards[shard]
            .tx
            .as_ref()
            .expect("shard channel present until drop")
            .send(req)
            .expect("shard worker alive until drop");
    }

    /// Receives one reply; `Panic` replies are stashed into `panic_msg`
    /// instead of unwinding so callers can finish their join loop first.
    fn recv(&self, panic_msg: &mut Option<String>) -> Option<Response> {
        match self.reply_rx.recv().expect("shard worker alive until drop") {
            Response::Panic { shard, msg } => {
                panic_msg.get_or_insert(format!("shard {shard} worker panicked: {msg}"));
                None
            }
            other => Some(other),
        }
    }

    /// Recomputes the aggregate stats from the per-shard snapshots.
    fn refresh_aggregate(&mut self) {
        let mut agg = EngineStats::default();
        for s in &self.shard_stats {
            agg.phase1_nanos += s.phase1_nanos;
            agg.phase2_nanos += s.phase2_nanos;
            agg.subscriptions_checked += s.subscriptions_checked;
            agg.matches += s.matches;
            agg.tables_created += s.tables_created;
            agg.tables_deleted += s.tables_deleted;
            agg.subscription_moves += s.subscription_moves;
        }
        agg.events = self.events_seen;
        self.agg = agg;
    }

    /// Fans a result-bearing request to every shard via `make`, then joins
    /// all replies through `on_reply`, re-raising any worker panic only
    /// after the fan-in completes.
    fn broadcast(
        &mut self,
        make: impl Fn(&mut Self) -> Request,
        mut on_reply: impl FnMut(&mut Self, Response),
    ) {
        for shard in 0..self.shards.len() {
            let req = make(self);
            debug_assert!(req.wants_reply());
            self.send(shard, req);
        }
        FANOUT_REQUESTS.add(self.shards.len() as u64);
        let mut panic_msg = None;
        for _ in 0..self.shards.len() {
            if let Some(resp) = self.recv(&mut panic_msg) {
                on_reply(self, resp);
            }
        }
        JOINS.inc();
        if let Some(msg) = panic_msg {
            panic!("{msg}");
        }
    }
}

impl MatchEngine for ShardedMatcher {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn insert(&mut self, id: SubscriptionId, sub: &Subscription) {
        let shard = self.shard_of(id);
        self.send(shard, Request::Insert(id, sub.clone()));
        self.shard_lens[shard] += 1;
        self.len += 1;
    }

    fn remove(&mut self, id: SubscriptionId) {
        let shard = self.shard_of(id);
        self.send(shard, Request::Remove(id));
        self.shard_lens[shard] = self.shard_lens[shard].saturating_sub(1);
        self.len = self.len.saturating_sub(1);
    }

    fn match_event(&mut self, event: &Event, out: &mut Vec<SubscriptionId>) {
        self.events_seen += 1;
        EVENTS.inc();
        let events = EventsRef::new(std::slice::from_ref(event));
        let merge_start = out.len();
        self.broadcast(
            |this| {
                let buf = this.spare_bufs.pop().unwrap_or_default();
                Request::Match(events, buf)
            },
            |this, resp| match resp {
                Response::Match {
                    shard,
                    out: part,
                    stats,
                } => {
                    out.extend_from_slice(&part);
                    this.shard_stats[shard] = stats;
                    this.spare_bufs.push(part);
                }
                _ => unreachable!("match fan-out only yields match replies"),
            },
        );
        // Deterministic merge: shards are disjoint, so sorting the
        // concatenation yields a duplicate-free, shard-count-independent
        // result.
        out[merge_start..].sort_unstable();
        self.refresh_aggregate();
    }

    fn match_batch_into(&mut self, events: &[Event], out: &mut Vec<Vec<SubscriptionId>>) {
        out.resize_with(events.len(), Vec::new);
        out.truncate(events.len());
        for dst in out.iter_mut() {
            dst.clear();
        }
        if events.is_empty() {
            return;
        }
        self.events_seen += events.len() as u64;
        EVENTS.add(events.len() as u64);
        BATCH_SIZE.record(events.len() as u64);
        let events_ref = EventsRef::new(events);
        self.broadcast(
            |this| {
                let buf = this.spare_batches.pop().unwrap_or_default();
                Request::MatchBatch(events_ref, buf)
            },
            |this, resp| match resp {
                Response::Batch { shard, buf, stats } => {
                    let mut start = 0;
                    for (dst, &end) in out.iter_mut().zip(&buf.offsets) {
                        dst.extend_from_slice(&buf.flat[start..end]);
                        start = end;
                    }
                    this.shard_stats[shard] = stats;
                    this.spare_batches.push(buf);
                }
                _ => unreachable!("batch fan-out only yields batch replies"),
            },
        );
        for dst in out.iter_mut() {
            dst.sort_unstable();
        }
        self.refresh_aggregate();
    }

    fn len(&self) -> usize {
        self.len
    }

    fn finalize(&mut self) {
        self.broadcast(
            |_| Request::Finalize,
            |this, resp| match resp {
                Response::Ack { shard, stats } => this.shard_stats[shard] = stats,
                _ => unreachable!("finalize fan-out only yields acks"),
            },
        );
        self.refresh_aggregate();
    }

    fn stats(&self) -> &EngineStats {
        &self.agg
    }

    fn reset_stats(&mut self) {
        self.broadcast(
            |_| Request::ResetStats,
            |this, resp| match resp {
                Response::Ack { shard, stats } => this.shard_stats[shard] = stats,
                _ => unreachable!("reset fan-out only yields acks"),
            },
        );
        self.events_seen = 0;
        self.refresh_aggregate();
    }

    fn heap_bytes(&self) -> usize {
        let mut total = 0;
        let mut panic_msg = None;
        for shard in 0..self.shards.len() {
            self.send(shard, Request::HeapBytes);
        }
        for _ in 0..self.shards.len() {
            if let Some(Response::HeapBytes { bytes }) = self.recv(&mut panic_msg) {
                total += bytes;
            }
        }
        if let Some(msg) = panic_msg {
            panic!("{msg}");
        }
        total
    }

    fn shard_subscription_counts(&self) -> Option<Vec<usize>> {
        Some(self.shard_lens.clone())
    }
}

impl Drop for ShardedMatcher {
    fn drop(&mut self) {
        for shard in &mut self.shards {
            shard.tx = None; // closing the channel stops the worker loop
        }
        for shard in &mut self.shards {
            if let Some(join) = shard.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// Default shard count: one per available hardware thread.
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::{AttrId, EventBuilder, SubscriptionBuilder};

    fn eq_sub(attr: u32, val: i64) -> Subscription {
        SubscriptionBuilder::default()
            .eq(AttrId(attr), val)
            .build()
            .unwrap()
    }

    fn event(pairs: &[(u32, i64)]) -> Event {
        let mut b = EventBuilder::default();
        for &(attr, val) in pairs {
            b = b.pair(AttrId(attr), val);
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_across_shards_sorted() {
        let mut m = ShardedMatcher::new(EngineKind::Counting, 3);
        for i in 0..64 {
            m.insert(SubscriptionId(i), &eq_sub(0, (i % 2) as i64));
        }
        m.finalize();
        let mut out = Vec::new();
        m.match_event(&event(&[(0, 0)]), &mut out);
        let want: Vec<SubscriptionId> = (0..64).step_by(2).map(SubscriptionId).collect();
        assert_eq!(out, want);
        assert_eq!(m.len(), 64);
        let counts = m.shard_subscription_counts().unwrap();
        assert_eq!(counts.len(), 3);
        assert_eq!(counts.iter().sum::<usize>(), 64);
        // 64 ids over 3 shards: the splitmix hash should not starve a shard.
        assert!(counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn batch_agrees_with_single_events() {
        let mut m = ShardedMatcher::new(EngineKind::Dynamic, 4);
        for i in 0..40 {
            m.insert(SubscriptionId(i), &eq_sub(i % 4, (i % 3) as i64));
        }
        m.finalize();
        let events: Vec<Event> = (0..12).map(|i| event(&[(i % 4, i as i64 % 3)])).collect();
        let mut batch = Vec::new();
        m.match_batch_into(&events, &mut batch);
        assert_eq!(batch.len(), events.len());
        for (e, got) in events.iter().zip(&batch) {
            let mut single = Vec::new();
            m.match_event(e, &mut single);
            assert_eq!(got, &single);
        }
    }

    #[test]
    fn remove_then_match() {
        let mut m = ShardedMatcher::new(EngineKind::Propagation, 2);
        for i in 0..10 {
            m.insert(SubscriptionId(i), &eq_sub(0, 7));
        }
        for i in (0..10).step_by(2) {
            m.remove(SubscriptionId(i));
        }
        let mut out = Vec::new();
        m.match_event(&event(&[(0, 7)]), &mut out);
        let want: Vec<SubscriptionId> = (1..10).step_by(2).map(SubscriptionId).collect();
        assert_eq!(out, want);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn stats_count_events_once() {
        let mut m = ShardedMatcher::new(EngineKind::Counting, 4);
        m.insert(SubscriptionId(0), &eq_sub(0, 1));
        for _ in 0..5 {
            let mut out = Vec::new();
            m.match_event(&event(&[(0, 1)]), &mut out);
        }
        assert_eq!(m.stats().events, 5);
        assert_eq!(m.stats().matches, 5);
        m.reset_stats();
        assert_eq!(m.stats().events, 0);
        assert_eq!(m.stats().matches, 0);
    }

    #[test]
    fn worker_panic_surfaces_on_next_synchronous_op() {
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut m = ShardedMatcher::new(EngineKind::Counting, 2);
            m.remove(SubscriptionId(42)); // unknown id: worker panics later
            let mut out = Vec::new();
            m.match_event(&event(&[(0, 1)]), &mut out);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn single_shard_behaves() {
        let mut m = ShardedMatcher::new(EngineKind::Static, 1);
        m.insert(SubscriptionId(3), &eq_sub(1, 2));
        m.finalize();
        let mut out = Vec::new();
        m.match_event(&event(&[(1, 2)]), &mut out);
        assert_eq!(out, vec![SubscriptionId(3)]);
        assert!(m.heap_bytes() > 0);
    }
}
