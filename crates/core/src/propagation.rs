//! The propagation algorithm (paper §2.2, §6: *propagation* and
//! *propagation-wp*).
//!
//! Each subscription is placed in a cluster list keyed by one of its
//! equality predicates — its *access predicate*. After phase 1 sets the
//! predicate bit vector, only the cluster lists of *satisfied* access
//! predicates are scanned, using the columnwise cluster kernel, optionally
//! with software prefetching (the `-wp` variant).
//!
//! Subscriptions without any equality predicate live in a fallback cluster
//! list scanned for every event (such subscriptions have no predicate `p`
//! with "s can only match events that verify p" available in hash form).

use crate::cluster::ClusterList;
use crate::engine::{EngineStats, MatchEngine};
use pubsub_index::{Phase1Batch, PredicateBitVec, PredicateId, PredicateIndex};
use pubsub_types::metrics::Counter;
use pubsub_types::{Event, FxHashMap, Subscription, SubscriptionId};
use std::time::Instant;

/// Events matched by the propagation engine (both variants).
static EVENTS: Counter = Counter::new("core.propagation.events");
/// Candidate subscriptions the cluster kernels verified.
static VERIFIED: Counter = Counter::new("core.propagation.verified");
/// Subscriptions the propagation engine reported as matches.
static MATCHED: Counter = Counter::new("core.propagation.matched");
/// Events that had to scan the no-access-predicate fallback list.
static FALLBACK_SCANS: Counter = Counter::new("core.propagation.fallback_scans");

#[derive(Debug)]
struct SubEntry {
    /// All interned predicate ids of the subscription.
    pred_ids: Vec<PredicateId>,
    /// The access predicate, or `None` for fallback subscriptions.
    access: Option<PredicateId>,
    /// Location inside the cluster list: (width, slot).
    width: u32,
    slot: u32,
}

/// The propagation matcher, with or without prefetching.
#[derive(Debug, Default)]
pub struct PropagationMatcher {
    prefetch: bool,
    index: PredicateIndex,
    /// Cluster lists keyed by access predicate.
    access: FxHashMap<PredicateId, ClusterList>,
    /// Subscriptions with no equality predicate, checked on every event.
    fallback: ClusterList,
    subs: Vec<Option<SubEntry>>,
    live: usize,
    // Per-event workhorse buffers.
    bits: PredicateBitVec,
    satisfied: Vec<PredicateId>,
    /// Reusable scratch for the batched phase-1 path.
    batch: Phase1Batch,
    stats: EngineStats,
}

impl PropagationMatcher {
    /// Creates an empty matcher. `prefetch` selects the *-wp* variant.
    pub fn new(prefetch: bool) -> Self {
        Self {
            prefetch,
            ..Self::default()
        }
    }

    /// Whether this instance issues prefetches.
    pub fn prefetch_enabled(&self) -> bool {
        self.prefetch
    }

    fn slot_of(&mut self, id: SubscriptionId) -> &mut Option<SubEntry> {
        let need = id.index() + 1;
        if self.subs.len() < need {
            self.subs.resize_with(need, || None);
        }
        &mut self.subs[id.index()]
    }

    /// Picks the access predicate for a subscription: the equality predicate
    /// whose cluster list is currently smallest. This balances the lists and
    /// needs no event statistics (the cost-based choice belongs to the
    /// clustered engines).
    fn choose_access(&self, eq_ids: &[PredicateId]) -> Option<PredicateId> {
        eq_ids
            .iter()
            .copied()
            .min_by_key(|pid| self.access.get(pid).map_or(0, |l| l.len()))
    }

    fn location_fixup(&mut self, moved: Option<SubscriptionId>, width: u32, slot: u32) {
        if let Some(m) = moved {
            let e = self.subs[m.index()]
                .as_mut()
                .expect("moved subscription must be live");
            debug_assert_eq!(e.width, width);
            e.slot = slot;
        }
    }

    /// Phase 2: scans the cluster lists of the satisfied access predicates
    /// (plus the fallback list) against `bits`. Returns candidates checked.
    fn phase2(
        &self,
        bits: &PredicateBitVec,
        satisfied: &[PredicateId],
        out: &mut Vec<SubscriptionId>,
    ) -> usize {
        let mut checked = 0usize;
        for &pid in satisfied {
            if let Some(list) = self.access.get(&pid) {
                checked += if self.prefetch {
                    list.match_into::<true>(bits, out)
                } else {
                    list.match_into::<false>(bits, out)
                };
            }
        }
        if !self.fallback.is_empty() {
            FALLBACK_SCANS.inc();
            checked += if self.prefetch {
                self.fallback.match_into::<true>(bits, out)
            } else {
                self.fallback.match_into::<false>(bits, out)
            };
        }
        checked
    }

    /// Folds one event's timings and counts into the stats and metrics.
    fn record_event(&mut self, phase1: u64, phase2: u64, checked: u64, matched: u64) {
        self.stats.events += 1;
        self.stats.subscriptions_checked += checked;
        self.stats.matches += matched;
        self.stats.phase1_nanos += phase1;
        self.stats.phase2_nanos += phase2;
        EVENTS.inc();
        VERIFIED.add(checked);
        MATCHED.add(matched);
        crate::engine::PHASE1_NANOS.record(phase1);
        crate::engine::PHASE2_NANOS.record(phase2);
    }
}

impl MatchEngine for PropagationMatcher {
    fn name(&self) -> &'static str {
        if self.prefetch {
            "propagation-wp"
        } else {
            "propagation"
        }
    }

    fn insert(&mut self, id: SubscriptionId, sub: &Subscription) {
        assert!(self.slot_of(id).is_none(), "duplicate subscription id {id}");
        // Intern all predicates; `Subscription` stores equality first, which
        // the cluster columns inherit so inequality bits are only read once
        // all equality bits passed (short-circuit order, paper §6.2.1).
        let pred_ids: Vec<PredicateId> = sub
            .predicates()
            .iter()
            .map(|p| self.index.intern(*p))
            .collect();
        let eq_ids = &pred_ids[..sub.equality_count()];
        let access = self.choose_access(eq_ids);

        // Column refs: every predicate except the access predicate.
        let bit_refs: Vec<u32> = pred_ids
            .iter()
            .filter(|&&pid| Some(pid) != access)
            .map(|pid| pid.0)
            .collect();

        let (width, slot) = match access {
            Some(pid) => self.access.entry(pid).or_default().insert(id, &bit_refs),
            None => self.fallback.insert(id, &bit_refs),
        };
        *self.slot_of(id) = Some(SubEntry {
            pred_ids,
            access,
            width: width as u32,
            slot: slot as u32,
        });
        self.live += 1;
    }

    fn remove(&mut self, id: SubscriptionId) {
        let entry = self.subs[id.index()]
            .take()
            .expect("removing unknown subscription");
        let (width, slot) = (entry.width, entry.slot);
        let moved = match entry.access {
            Some(pid) => {
                let list = self.access.get_mut(&pid).expect("access list exists");
                let moved = list.swap_remove(width as usize, slot as usize);
                if list.is_empty() {
                    self.access.remove(&pid);
                }
                moved
            }
            None => self.fallback.swap_remove(width as usize, slot as usize),
        };
        self.location_fixup(moved, width, slot);
        for pid in entry.pred_ids {
            self.index.release(pid);
        }
        self.live -= 1;
    }

    fn match_event(&mut self, event: &Event, out: &mut Vec<SubscriptionId>) {
        let t0 = Instant::now();
        self.satisfied.clear();
        self.index
            .eval_into(event, &mut self.bits, &mut self.satisfied);
        let t1 = Instant::now();

        let before = out.len();
        let bits = std::mem::take(&mut self.bits);
        let satisfied = std::mem::take(&mut self.satisfied);
        let checked = self.phase2(&bits, &satisfied, out);
        self.bits = bits;
        self.satisfied = satisfied;
        self.bits.clear();

        let matched = (out.len() - before) as u64;
        let phase1 = (t1 - t0).as_nanos() as u64;
        let phase2 = t1.elapsed().as_nanos() as u64;
        self.record_event(phase1, phase2, checked as u64, matched);
    }

    fn match_batch_into(&mut self, events: &[Event], out: &mut Vec<Vec<SubscriptionId>>) {
        out.resize_with(events.len(), Vec::new);
        out.truncate(events.len());
        let t0 = Instant::now();
        let mut batch = std::mem::take(&mut self.batch);
        self.index.eval_batch_into(events, &mut batch);
        let t1 = Instant::now();
        // Attribute the amortised phase-1 cost evenly across the batch.
        let phase1 = ((t1 - t0).as_nanos() as u64) / (events.len().max(1) as u64);

        for (i, dst) in out.iter_mut().enumerate() {
            dst.clear();
            let tm = Instant::now();
            self.index.materialize(&mut batch, i);
            let phase1_i = phase1 + tm.elapsed().as_nanos() as u64;
            let t2 = Instant::now();
            let checked = self.phase2(batch.bits(i), batch.satisfied(i), dst);
            batch.clear_event(i);
            let phase2 = t2.elapsed().as_nanos() as u64;
            self.record_event(phase1_i, phase2, checked as u64, dst.len() as u64);
        }
        self.batch = batch;
    }

    fn len(&self) -> usize {
        self.live
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn heap_bytes(&self) -> usize {
        let lists: usize = self.access.values().map(|l| l.heap_bytes()).sum();
        let entries: usize = self
            .subs
            .iter()
            .flatten()
            .map(|e| e.pred_ids.capacity() * 4 + 16)
            .sum();
        lists + self.fallback.heap_bytes() + entries + self.bits.heap_bytes()
    }
}

impl crate::view::MatchView for PropagationMatcher {
    fn match_view(
        &self,
        event: &Event,
        scratch: &mut crate::view::ViewScratch,
        out: &mut Vec<SubscriptionId>,
    ) {
        let t0 = Instant::now();
        scratch.satisfied.clear();
        self.index
            .eval_into(event, &mut scratch.bits, &mut scratch.satisfied);
        let t1 = Instant::now();

        let before = out.len();
        let checked = self.phase2(&scratch.bits, &scratch.satisfied, out);
        scratch.bits.clear();

        let matched = (out.len() - before) as u64;
        let phase1 = (t1 - t0).as_nanos() as u64;
        let phase2 = t1.elapsed().as_nanos() as u64;
        EVENTS.inc();
        VERIFIED.add(checked as u64);
        MATCHED.add(matched);
        scratch.record_event(phase1, phase2, checked as u64, matched);
    }

    fn match_batch_view(
        &self,
        events: &[Event],
        scratch: &mut crate::view::ViewScratch,
        out: &mut Vec<Vec<SubscriptionId>>,
    ) {
        out.resize_with(events.len(), Vec::new);
        out.truncate(events.len());
        let t0 = Instant::now();
        let mut batch = std::mem::take(&mut scratch.batch);
        self.index.eval_batch_into(events, &mut batch);
        let t1 = Instant::now();
        // Attribute the amortised phase-1 cost evenly across the batch.
        let phase1 = ((t1 - t0).as_nanos() as u64) / (events.len().max(1) as u64);

        for (i, dst) in out.iter_mut().enumerate() {
            dst.clear();
            let tm = Instant::now();
            self.index.materialize(&mut batch, i);
            let phase1_i = phase1 + tm.elapsed().as_nanos() as u64;
            let t2 = Instant::now();
            let checked = self.phase2(batch.bits(i), batch.satisfied(i), dst);
            batch.clear_event(i);
            let phase2 = t2.elapsed().as_nanos() as u64;
            EVENTS.inc();
            VERIFIED.add(checked as u64);
            MATCHED.add(dst.len() as u64);
            scratch.record_event(phase1_i, phase2, checked as u64, dst.len() as u64);
        }
        scratch.batch = batch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::{AttrId, Operator};

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn sid(i: u32) -> SubscriptionId {
        SubscriptionId(i)
    }

    fn matcher_pair() -> [PropagationMatcher; 2] {
        [
            PropagationMatcher::new(false),
            PropagationMatcher::new(true),
        ]
    }

    #[test]
    fn basic_equality_matching() {
        for mut m in matcher_pair() {
            let s = Subscription::builder()
                .eq(a(0), 1i64)
                .eq(a(1), 2i64)
                .build()
                .unwrap();
            m.insert(sid(1), &s);
            let hit = Event::builder()
                .pair(a(0), 1i64)
                .pair(a(1), 2i64)
                .build()
                .unwrap();
            let near_miss = Event::builder()
                .pair(a(0), 1i64)
                .pair(a(1), 3i64)
                .build()
                .unwrap();
            let mut out = Vec::new();
            m.match_event(&hit, &mut out);
            assert_eq!(out, vec![sid(1)], "{}", m.name());
            out.clear();
            m.match_event(&near_miss, &mut out);
            assert!(out.is_empty(), "{}", m.name());
        }
    }

    #[test]
    fn inequality_only_subscription_uses_fallback() {
        for mut m in matcher_pair() {
            let s = Subscription::builder()
                .with(a(0), Operator::Lt, 10i64)
                .with(a(0), Operator::Gt, 5i64)
                .build()
                .unwrap();
            m.insert(sid(1), &s);
            let hit = Event::builder().pair(a(0), 7i64).build().unwrap();
            let miss = Event::builder().pair(a(0), 12i64).build().unwrap();
            let mut out = Vec::new();
            m.match_event(&hit, &mut out);
            assert_eq!(out, vec![sid(1)]);
            out.clear();
            m.match_event(&miss, &mut out);
            assert!(out.is_empty());
            m.remove(sid(1));
            assert!(m.is_empty());
        }
    }

    #[test]
    fn access_predicate_balancing_spreads_subscriptions() {
        let mut m = PropagationMatcher::new(false);
        // Both subscriptions share eq on attr 0; the second should pick the
        // (empty) attr-1 list rather than pile onto attr 0.
        let s1 = Subscription::builder()
            .eq(a(0), 1i64)
            .eq(a(1), 1i64)
            .build()
            .unwrap();
        let s2 = Subscription::builder()
            .eq(a(0), 1i64)
            .eq(a(1), 2i64)
            .build()
            .unwrap();
        m.insert(sid(1), &s1);
        m.insert(sid(2), &s2);
        assert_eq!(m.access.len(), 2, "two distinct access predicates in use");
    }

    #[test]
    fn mixed_operators_respect_all_predicates() {
        for mut m in matcher_pair() {
            let s = Subscription::builder()
                .eq(a(0), 1i64)
                .with(a(1), Operator::Ge, 10i64)
                .with(a(2), Operator::Ne, 5i64)
                .build()
                .unwrap();
            m.insert(sid(7), &s);
            let mut out = Vec::new();
            let hit = Event::builder()
                .pair(a(0), 1i64)
                .pair(a(1), 10i64)
                .pair(a(2), 6i64)
                .build()
                .unwrap();
            m.match_event(&hit, &mut out);
            assert_eq!(out, vec![sid(7)]);
            out.clear();
            let miss = Event::builder()
                .pair(a(0), 1i64)
                .pair(a(1), 10i64)
                .pair(a(2), 5i64)
                .build()
                .unwrap();
            m.match_event(&miss, &mut out);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn removal_with_swapped_slots() {
        let mut m = PropagationMatcher::new(false);
        let mk = |v: i64| {
            Subscription::builder()
                .eq(a(0), 1i64)
                .eq(a(1), v)
                .build()
                .unwrap()
        };
        // Same size, likely same access list → same cluster.
        for i in 0..10u32 {
            m.insert(sid(i), &mk(i as i64));
        }
        // Remove from the front, forcing slot moves, then verify the rest.
        for i in 0..5u32 {
            m.remove(sid(i));
        }
        for i in 5..10u32 {
            let e = Event::builder()
                .pair(a(0), 1i64)
                .pair(a(1), i as i64)
                .build()
                .unwrap();
            let mut out = Vec::new();
            m.match_event(&e, &mut out);
            assert_eq!(out, vec![sid(i)], "survivor {i} still matches");
        }
        // Removing the survivors exercises the fixed-up slots.
        for i in 5..10u32 {
            m.remove(sid(i));
        }
        assert!(m.is_empty());
    }

    #[test]
    fn missing_event_attribute_never_matches() {
        for mut m in matcher_pair() {
            let s = Subscription::builder()
                .eq(a(0), 1i64)
                .eq(a(5), 1i64)
                .build()
                .unwrap();
            m.insert(sid(1), &s);
            let e = Event::builder().pair(a(0), 1i64).build().unwrap();
            let mut out = Vec::new();
            m.match_event(&e, &mut out);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut m = PropagationMatcher::new(true);
        let s = Subscription::builder().eq(a(0), 1i64).build().unwrap();
        m.insert(sid(1), &s);
        let e = Event::builder().pair(a(0), 1i64).build().unwrap();
        let mut out = Vec::new();
        m.match_event(&e, &mut out);
        m.match_event(&e, &mut out);
        assert_eq!(m.stats().events, 2);
        assert_eq!(m.stats().matches, 2);
        assert_eq!(m.stats().subscriptions_checked, 2);
        m.reset_stats();
        assert_eq!(m.stats().events, 0);
    }
}
