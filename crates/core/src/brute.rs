//! Brute-force linear-scan matcher — the correctness oracle.
//!
//! Not in the paper's evaluation; exists so property tests can compare every
//! engine against the definitional semantics of §1.1.

use crate::engine::{EngineStats, MatchEngine};
use pubsub_types::metrics::Counter;
use pubsub_types::{Event, FxHashMap, Subscription, SubscriptionId};
use std::time::Instant;

/// Events matched by the brute-force oracle.
static EVENTS: Counter = Counter::new("core.brute.events");
/// Subscriptions scanned (every live subscription, every event).
static VERIFIED: Counter = Counter::new("core.brute.verified");
/// Subscriptions the oracle reported as matches.
static MATCHED: Counter = Counter::new("core.brute.matched");

/// Stores subscriptions verbatim and matches by scanning all of them.
#[derive(Debug, Default)]
pub struct BruteForceMatcher {
    subs: FxHashMap<SubscriptionId, Subscription>,
    stats: EngineStats,
}

impl BruteForceMatcher {
    /// Creates an empty matcher.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MatchEngine for BruteForceMatcher {
    fn name(&self) -> &'static str {
        "brute-force"
    }

    fn insert(&mut self, id: SubscriptionId, sub: &Subscription) {
        let prev = self.subs.insert(id, sub.clone());
        assert!(prev.is_none(), "duplicate subscription id {id}");
    }

    fn remove(&mut self, id: SubscriptionId) {
        self.subs
            .remove(&id)
            .expect("removing unknown subscription");
    }

    fn match_event(&mut self, event: &Event, out: &mut Vec<SubscriptionId>) {
        let start = Instant::now();
        let before = out.len();
        for (id, sub) in &self.subs {
            if sub.matches_event(event) {
                out.push(*id);
            }
        }
        self.stats.events += 1;
        self.stats.subscriptions_checked += self.subs.len() as u64;
        self.stats.matches += (out.len() - before) as u64;
        let phase2 = start.elapsed().as_nanos() as u64;
        self.stats.phase2_nanos += phase2;
        EVENTS.inc();
        VERIFIED.add(self.subs.len() as u64);
        MATCHED.add((out.len() - before) as u64);
        crate::engine::PHASE2_NANOS.record(phase2);
    }

    fn len(&self) -> usize {
        self.subs.len()
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn heap_bytes(&self) -> usize {
        self.subs
            .values()
            .map(|s| std::mem::size_of_val(s.predicates()) + 64)
            .sum()
    }
}

impl crate::view::MatchView for BruteForceMatcher {
    fn match_view(
        &self,
        event: &Event,
        scratch: &mut crate::view::ViewScratch,
        out: &mut Vec<SubscriptionId>,
    ) {
        let start = Instant::now();
        let before = out.len();
        for (id, sub) in &self.subs {
            if sub.matches_event(event) {
                out.push(*id);
            }
        }
        let matched = (out.len() - before) as u64;
        let phase2 = start.elapsed().as_nanos() as u64;
        EVENTS.inc();
        VERIFIED.add(self.subs.len() as u64);
        MATCHED.add(matched);
        scratch.record_event(0, phase2, self.subs.len() as u64, matched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pubsub_types::{AttrId, Operator};

    #[test]
    fn insert_match_remove() {
        let mut m = BruteForceMatcher::new();
        let sub = Subscription::builder()
            .eq(AttrId(0), 5i64)
            .with(AttrId(1), Operator::Lt, 10i64)
            .build()
            .unwrap();
        m.insert(SubscriptionId(1), &sub);
        assert_eq!(m.len(), 1);

        let hit = Event::builder()
            .pair(AttrId(0), 5i64)
            .pair(AttrId(1), 3i64)
            .build()
            .unwrap();
        let miss = Event::builder()
            .pair(AttrId(0), 5i64)
            .pair(AttrId(1), 30i64)
            .build()
            .unwrap();
        let mut out = Vec::new();
        m.match_event(&hit, &mut out);
        assert_eq!(out, vec![SubscriptionId(1)]);
        out.clear();
        m.match_event(&miss, &mut out);
        assert!(out.is_empty());

        m.remove(SubscriptionId(1));
        assert!(m.is_empty());
        assert_eq!(m.stats().events, 2);
    }

    #[test]
    #[should_panic(expected = "duplicate subscription id")]
    fn duplicate_id_panics() {
        let mut m = BruteForceMatcher::new();
        let sub = Subscription::builder().eq(AttrId(0), 1i64).build().unwrap();
        m.insert(SubscriptionId(1), &sub);
        m.insert(SubscriptionId(1), &sub);
    }
}
