//! Chaos tests for the supervised sharded engine: deterministic fault
//! injection (`pubsub_types::faults`) forces worker panics, state
//! corruption, spawn failures and slow workers, and every test asserts the
//! matcher recovers to *exact* brute-force equivalence.
//!
//! The whole file is runtime-gated on `faults::enabled()`: without
//! `--features pubsub-types/faults` (or the root `faults` feature) every
//! test returns immediately, so the default tier-1 lane is unaffected.
//! `scripts/check.sh --chaos` runs the armed version.

use std::sync::Mutex;

use proptest::prelude::*;
use pubsub_core::{
    Backpressure, EngineKind, MatchEngine, ShardedConfig, ShardedMatcher, FAULT_SPAWN,
    FAULT_WORKER_MATCH, FAULT_WORKER_OP,
};
use pubsub_types::faults::{self, FaultAction, Schedule};
use pubsub_types::{
    AttrId, Event, Operator, Predicate, ShardError, Subscription, SubscriptionId, Value,
};

/// The fault registry is process-global; every test (and proptest case)
/// serializes on this lock so one test's rules never fire inside another.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    // An assertion failure in one test must not wedge the rest.
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

fn sub_eq(attr: u32, value: i64) -> Subscription {
    Subscription::from_predicates(vec![Predicate::new(
        AttrId(attr),
        Operator::Eq,
        Value::Int(value),
    )])
    .unwrap()
}

fn event_eq(attr: u32, value: i64) -> Event {
    Event::from_pairs(vec![(AttrId(attr), Value::Int(value))]).unwrap()
}

/// Populates `m` with `n` subscriptions on `attr0 == i % 4` and returns the
/// ids that match `attr0 == 1`.
fn seed_subs(m: &mut ShardedMatcher, n: u32) -> Vec<SubscriptionId> {
    let mut want = Vec::new();
    for i in 0..n {
        let sub = sub_eq(0, i64::from(i % 4));
        m.insert(SubscriptionId(i), &sub);
        if i % 4 == 1 {
            want.push(SubscriptionId(i));
        }
    }
    want
}

/// Acceptance path of the issue: a forced worker panic mid-publish must not
/// reach the caller; the shard rebuilds and the very same publish returns
/// the exact match set.
#[test]
fn forced_panic_mid_match_self_heals_exactly() {
    if !faults::enabled() {
        return;
    }
    let _g = lock();
    faults::clear();
    let mut m = ShardedMatcher::new(EngineKind::Counting, 2);
    let want = seed_subs(&mut m, 32);
    faults::arm(
        FAULT_WORKER_MATCH,
        None,
        FaultAction::Panic,
        Schedule::Nth(1),
    );
    let mut out = Vec::new();
    let report = m
        .try_match_event(&event_eq(0, 1), &mut out)
        .expect("Block policy never overloads");
    assert!(!report.is_degraded(), "retry recovered the crashed shard");
    assert_eq!(out, want, "post-recovery match set is exact");
    let health = m.health();
    assert!(health.worker_panics >= 1);
    assert!(
        health.shard_rebuilds >= 1,
        "acceptance: sharded.shard_rebuilds >= 1"
    );
    assert_eq!(health.quarantined_events, 0);
    assert_eq!(m.sealed_shard_count(), 0);
    faults::clear();
}

/// An event that panics the same shard twice is quarantined: the publish
/// still completes (degraded), the ring records the poison event, and the
/// shard is back in service for the next publish.
#[test]
fn double_panic_quarantines_the_event() {
    if !faults::enabled() {
        return;
    }
    let _g = lock();
    faults::clear();
    let mut m = ShardedMatcher::new(EngineKind::Counting, 1);
    let want = seed_subs(&mut m, 8);
    // Per-rule hit counts: the first match consumes Nth(1), the retry after
    // the rebuild consumes Nth(2) — a double panic on the same event.
    faults::arm(
        FAULT_WORKER_MATCH,
        None,
        FaultAction::Panic,
        Schedule::Nth(1),
    );
    faults::arm(
        FAULT_WORKER_MATCH,
        None,
        FaultAction::Panic,
        Schedule::Nth(2),
    );
    let mut out = Vec::new();
    let report = m
        .try_match_event(&event_eq(0, 1), &mut out)
        .expect("quarantine degrades, it does not error");
    assert!(report.is_degraded());
    assert_eq!(report.quarantined, 1);
    assert!(out.is_empty(), "the only shard lost this event");
    let health = m.health();
    assert_eq!(health.quarantined_events, 1);
    assert_eq!(health.last_quarantined.len(), 1);
    assert_eq!(health.last_quarantined[0].shard, 0);
    assert_eq!(health.worker_panics, 2);
    // The poison event is not blocklisted — with the rules spent the same
    // event now matches exactly.
    out.clear();
    let report = m.try_match_event(&event_eq(0, 1), &mut out).unwrap();
    assert!(!report.is_degraded());
    assert_eq!(out, want);
    faults::clear();
}

/// `Corrupt` mutates the engine before unwinding; recovery must rebuild
/// from the authoritative log rather than resume the damaged survivor.
#[test]
fn corrupted_shard_state_is_discarded_by_rebuild() {
    if !faults::enabled() {
        return;
    }
    let _g = lock();
    faults::clear();
    let mut m = ShardedMatcher::new(EngineKind::Counting, 1);
    let want = seed_subs(&mut m, 8);
    faults::arm(
        FAULT_WORKER_MATCH,
        None,
        FaultAction::Corrupt,
        Schedule::Nth(1),
    );
    let mut out = Vec::new();
    let report = m.try_match_event(&event_eq(0, 1), &mut out).unwrap();
    assert!(!report.is_degraded());
    assert_eq!(out, want);
    // The junk subscription planted by `Corrupt` matches `attr0 == i64::MIN`;
    // a rebuilt shard must not know it.
    out.clear();
    m.match_event(&event_eq(0, i64::MIN), &mut out);
    assert!(out.is_empty(), "corrupted state leaked through the rebuild");
    assert!(m.health().shard_rebuilds >= 1);
    faults::clear();
}

/// Builds a one-shard matcher with a capacity-1 queue whose worker is
/// stalled by a `Delay` fault, plus one queued insert filling the queue.
/// Returns the matcher and the ids matching `attr0 == 1`.
fn congested_matcher(policy: Backpressure, delay_ms: u64) -> (ShardedMatcher, Vec<SubscriptionId>) {
    let config = ShardedConfig {
        queue_capacity: 1,
        backpressure: policy,
        ..ShardedConfig::default()
    };
    let mut m = ShardedMatcher::with_config(EngineKind::Counting, 1, config);
    faults::arm(
        FAULT_WORKER_OP,
        None,
        FaultAction::Delay(delay_ms),
        Schedule::Nth(1),
    );
    // First insert reaches the worker and trips the delay; the second sits
    // in the queue, leaving it full for the duration of the stall.
    m.insert(SubscriptionId(1), &sub_eq(0, 1));
    m.insert(SubscriptionId(2), &sub_eq(0, 1));
    (m, vec![SubscriptionId(1), SubscriptionId(2)])
}

#[test]
fn block_policy_waits_out_congestion_losslessly() {
    if !faults::enabled() {
        return;
    }
    let _g = lock();
    faults::clear();
    let (mut m, want) = congested_matcher(Backpressure::Block, 150);
    let mut out = Vec::new();
    let report = m.try_match_event(&event_eq(0, 1), &mut out).unwrap();
    assert!(!report.is_degraded());
    assert_eq!(out, want, "Block trades latency for completeness");
    assert_eq!(m.health().shed_requests, 0);
    faults::clear();
}

#[test]
fn shed_policy_skips_congested_shard_and_reports_it() {
    if !faults::enabled() {
        return;
    }
    let _g = lock();
    faults::clear();
    let (mut m, want) = congested_matcher(Backpressure::Shed, 400);
    let mut out = Vec::new();
    let report = m.try_match_event(&event_eq(0, 1), &mut out).unwrap();
    assert!(report.is_degraded());
    assert_eq!(report.skipped_shards, vec![0]);
    assert!(out.is_empty(), "the only shard was shed");
    assert_eq!(m.health().shed_requests, 1);
    assert_eq!(m.health().degraded_matches, 1);
    // finalize() drains the queue (blocking barrier); service is then exact.
    m.finalize();
    out.clear();
    let report = m.try_match_event(&event_eq(0, 1), &mut out).unwrap();
    assert!(!report.is_degraded());
    assert_eq!(out, want);
    faults::clear();
}

#[test]
fn error_fast_policy_surfaces_overload_to_the_caller() {
    if !faults::enabled() {
        return;
    }
    let _g = lock();
    faults::clear();
    let (mut m, want) = congested_matcher(Backpressure::ErrorFast, 400);
    let mut out = Vec::new();
    match m.try_match_event(&event_eq(0, 1), &mut out) {
        Err(ShardError::Overloaded { shard }) => assert_eq!(shard, 0),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(out.is_empty(), "an aborted match reports nothing");
    // The infallible trait path degrades ErrorFast to Shed instead of
    // panicking (the queue is still congested by the same delay).
    m.match_event(&event_eq(0, 1), &mut out);
    assert!(m.health().shed_requests >= 1);
    m.finalize();
    out.clear();
    let report = m.try_match_event(&event_eq(0, 1), &mut out).unwrap();
    assert!(!report.is_degraded());
    assert_eq!(out, want);
    faults::clear();
}

/// A spawn failure during construction falls back to fewer shards instead
/// of failing; the smaller matcher is fully functional.
#[test]
fn spawn_failure_falls_back_to_fewer_shards() {
    if !faults::enabled() {
        return;
    }
    let _g = lock();
    faults::clear();
    faults::arm(FAULT_SPAWN, Some(2), FaultAction::Panic, Schedule::Nth(1));
    let mut m = ShardedMatcher::new(EngineKind::Counting, 4);
    assert_eq!(m.shard_count(), 3, "attempt 2 failed, three shards remain");
    assert_eq!(m.health().spawn_fallbacks, 1);
    let want = seed_subs(&mut m, 16);
    let mut out = Vec::new();
    m.match_event(&event_eq(0, 1), &mut out);
    assert_eq!(out, want);
    faults::clear();
}

// ---------------------------------------------------------------------------
// Chaos property: random fault schedules, every paper engine, shard counts
// {1, 2, 7} — after the faults are cleared the matcher must be exactly
// equivalent to the brute-force oracle (honors PROPTEST_CASES).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(u32, i64),
    RemoveNth(prop::sample::Index),
    Match(u32, i64),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => (0u32..4, 0i64..6).prop_map(|(a, v)| Op::Insert(a, v)),
            1 => any::<prop::sample::Index>().prop_map(Op::RemoveNth),
            3 => (0u32..4, 0i64..6).prop_map(|(a, v)| Op::Match(a, v)),
        ],
        1..48,
    )
}

fn arb_schedule() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        (1u64..6).prop_map(Schedule::EveryNth),
        (1u64..10).prop_map(Schedule::Nth),
        any::<u64>().prop_map(|seed| Schedule::Seeded {
            seed,
            prob_ppm: 200_000,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_fault_schedules_recover_to_exact_equivalence(
        ops in arb_ops(),
        kind_idx in 0usize..5,
        shards in prop::sample::select(vec![1usize, 2, 7]),
        on_match_point in any::<bool>(),
        corrupt in any::<bool>(),
        schedule in arb_schedule(),
    ) {
        if !faults::enabled() {
            return Ok(());
        }
        let _g = lock();
        faults::clear();
        let kind = EngineKind::PAPER_ENGINES[kind_idx];
        let point = if on_match_point { FAULT_WORKER_MATCH } else { FAULT_WORKER_OP };
        let action = if corrupt { FaultAction::Corrupt } else { FaultAction::Panic };
        faults::arm(point, None, action, schedule);

        let mut engine = ShardedMatcher::new(kind, shards);
        let mut oracle = EngineKind::BruteForce.build();
        let mut live: Vec<SubscriptionId> = Vec::new();
        let mut next_id = 0u32;
        let mut probes: Vec<Event> = Vec::new();
        for op in &ops {
            match op {
                Op::Insert(a, v) => {
                    let id = SubscriptionId(next_id);
                    next_id += 1;
                    let sub = sub_eq(*a, *v);
                    engine.insert(id, &sub);
                    oracle.insert(id, &sub);
                    live.push(id);
                }
                Op::RemoveNth(n) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.swap_remove(n.index(live.len()));
                    engine.remove(id);
                    oracle.remove(id);
                }
                Op::Match(a, v) => {
                    let event = event_eq(*a, *v);
                    let mut got = Vec::new();
                    let mut want = Vec::new();
                    engine.match_event(&event, &mut got);
                    oracle.match_event(&event, &mut want);
                    want.sort();
                    // Under active faults a shard may be quarantined out of a
                    // publish: results may be incomplete but never wrong.
                    prop_assert!(
                        got.windows(2).all(|w| w[0] < w[1]),
                        "sharded output sorted and duplicate-free"
                    );
                    prop_assert!(
                        got.iter().all(|id| want.binary_search(id).is_ok()),
                        "degraded result contains a wrong id: {got:?} vs {want:?}"
                    );
                    probes.push(event);
                }
            }
        }

        // Recovery: with injection off, every probe is exactly equivalent.
        faults::clear();
        prop_assert_eq!(engine.len(), oracle.len());
        for event in &probes {
            let mut got = Vec::new();
            let mut want = Vec::new();
            engine.match_event(event, &mut got);
            oracle.match_event(event, &mut want);
            want.sort();
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(engine.sealed_shard_count(), 0, "no shard left sealed");
    }
}
