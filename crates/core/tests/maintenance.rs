//! Behavioural tests for the dynamic maintenance machinery (paper §4):
//! insert-triggered margin checks, vote accumulation with marks, the
//! benefit-vs-overhead creation gate, weak-table deletion, and correctness
//! under continuous maintenance.

use pubsub_core::{ClusteredMatcher, DynamicConfig, MatchEngine};
use pubsub_types::{AttrId, Event, Operator, Subscription, SubscriptionId, Value};

fn a(i: u32) -> AttrId {
    AttrId(i)
}

fn sid(i: u32) -> SubscriptionId {
    SubscriptionId(i)
}

fn pair_sub(v0: i64, v1: i64) -> Subscription {
    Subscription::builder()
        .eq(a(0), v0)
        .eq(a(1), v1)
        .build()
        .unwrap()
}

fn feed_uniform_events(m: &mut ClusteredMatcher, domain: i64, n: usize) {
    let mut out = Vec::new();
    for i in 0..n as i64 {
        let e = Event::builder()
            .pair(a(0), i % domain)
            .pair(a(1), (i / domain) % domain)
            .build()
            .unwrap();
        out.clear();
        m.match_event(&e, &mut out);
    }
}

/// Insert-triggered maintenance creates a pair table without any manual
/// `run_maintenance` call once a cluster's margin and the accumulated
/// benefit justify it.
#[test]
fn insert_triggered_table_creation() {
    let mut m = ClusteredMatcher::new_dynamic_with(DynamicConfig {
        period: usize::MAX, // no full passes: only the insert trigger
        bm_max: 2.0,
        b_create: 100,
        b_delete: 0,
        max_schema_len: 2,
        min_gain: 0.0,
        decay_stats: false,
    });
    // Warm statistics first so margins are meaningful.
    for i in 0..200u32 {
        m.insert(sid(i), &pair_sub((i % 4) as i64, (i % 4) as i64));
    }
    feed_uniform_events(&mut m, 4, 400);
    // Now flood one singleton cluster: margins cross BMmax at insert time.
    for i in 200..2200u32 {
        m.insert(sid(i), &pair_sub((i % 4) as i64, (i % 7) as i64));
    }
    assert!(
        m.stats().tables_created > 0,
        "insert-triggered maintenance created tables: {:?}",
        m.table_summary()
    );
    let has_pair = m
        .table_summary()
        .iter()
        .any(|(s, p, _)| s.len() == 2 && *p > 0);
    assert!(has_pair, "tables: {:?}", m.table_summary());
    // Matching stays correct afterwards.
    let mut out = Vec::new();
    let e = Event::builder()
        .pair(a(0), 1i64)
        .pair(a(1), 1i64)
        .build()
        .unwrap();
    m.match_event(&e, &mut out);
    let expected = (0..2200u32)
        .filter(|i| {
            let v0 = (*i % 4) as i64;
            let v1 = if *i < 200 {
                (*i % 4) as i64
            } else {
                (*i % 7) as i64
            };
            v0 == 1 && v1 == 1
        })
        .count();
    assert_eq!(out.len(), expected);
}

/// The benefit-vs-overhead gate: a population too small to amortise one
/// table probe never gets a multi-attribute table, no matter how often
/// maintenance runs.
#[test]
fn creation_gate_rejects_marginal_tables() {
    let mut m = ClusteredMatcher::new_dynamic_with(DynamicConfig {
        period: 64,
        bm_max: 0.01, // everything is "over margin"
        b_create: 5,  // trivially reached
        b_delete: 0,
        max_schema_len: 2,
        min_gain: 0.0,
        decay_stats: false,
    });
    // 40 subscriptions with two equality predicates on a large domain: the
    // expected saving of a pair table is ~40 × 0.03 ≈ 1.2 checks/event,
    // far below one probe's cost under the calibrated constants.
    for i in 0..40u32 {
        m.insert(sid(i), &pair_sub((i % 40) as i64, (i / 2) as i64));
    }
    feed_uniform_events(&mut m, 40, 600);
    m.run_maintenance();
    let pairs = m
        .table_summary()
        .iter()
        .filter(|(s, _, _)| s.len() >= 2)
        .count();
    assert_eq!(pairs, 0, "no table should pay off: {:?}", m.table_summary());
}

/// Freezing stops all table creation/deletion but keeps matching correct
/// and placement adaptive.
#[test]
fn freeze_stops_configuration_changes() {
    let mut m = ClusteredMatcher::new_dynamic_with(DynamicConfig {
        period: 128,
        bm_max: 1.0,
        b_create: 50,
        b_delete: 4,
        max_schema_len: 2,
        min_gain: 0.0,
        decay_stats: false,
    });
    for i in 0..500u32 {
        m.insert(sid(i), &pair_sub((i % 2) as i64, (i % 3) as i64));
    }
    feed_uniform_events(&mut m, 3, 300);
    m.freeze();
    let tables_before = m.table_summary().len();
    let created_before = m.stats().tables_created;
    // Heavy churn after the freeze.
    for i in 500..3000u32 {
        m.insert(sid(i), &pair_sub((i % 2) as i64, (i % 3) as i64));
        m.remove(sid(i - 400));
    }
    feed_uniform_events(&mut m, 3, 300);
    assert_eq!(m.stats().tables_created, created_before, "no new tables");
    assert_eq!(m.table_summary().len(), tables_before, "table set frozen");

    // Still correct.
    let mut out = Vec::new();
    let e = Event::builder()
        .pair(a(0), 0i64)
        .pair(a(1), 0i64)
        .build()
        .unwrap();
    m.match_event(&e, &mut out);
    assert!(out.iter().all(|s| {
        let i = s.0;
        i % 2 == 0 && i % 3 == 0
    }));
}

/// Continuous heavy maintenance (tiny period, aggressive thresholds) under
/// string values and mixed operators never loses or fabricates a match.
#[test]
fn maintenance_correctness_under_mixed_workload() {
    let mut m = ClusteredMatcher::new_dynamic_with(DynamicConfig {
        period: 16,
        bm_max: 0.1,
        b_create: 8,
        b_delete: 3,
        max_schema_len: 3,
        min_gain: 0.0,
        decay_stats: true,
    });
    let mut subs = Vec::new();
    for i in 0..300u32 {
        let sub = Subscription::builder()
            .eq(a(0), (i % 5) as i64)
            .eq(a(1), Value::Str(pubsub_types::Symbol(i % 3)))
            .with(a(2), Operator::Lt, (i % 50) as i64)
            .build()
            .unwrap();
        m.insert(sid(i), &sub);
        subs.push(sub);
    }
    // Remove a third, keeping the oracle in sync.
    let mut live: Vec<u32> = (0..300).collect();
    for i in (0..300u32).step_by(3) {
        m.remove(sid(i));
        live.retain(|&x| x != i);
    }
    for round in 0..50i64 {
        let e = Event::builder()
            .pair(a(0), round % 5)
            .pair(a(1), Value::Str(pubsub_types::Symbol((round % 3) as u32)))
            .pair(a(2), round % 60)
            .build()
            .unwrap();
        let mut got = Vec::new();
        m.match_event(&e, &mut got);
        got.sort();
        let mut want: Vec<SubscriptionId> = live
            .iter()
            .filter(|&&i| subs[i as usize].matches_event(&e))
            .map(|&i| sid(i))
            .collect();
        want.sort();
        assert_eq!(got, want, "round {round}");
    }
}

/// Statistics decay lets the engine react to a value-distribution change:
/// the selectivity of the newly hot value rises, margins grow, and the
/// engine reorganises (the Figure 4(b) mechanism in miniature).
#[test]
fn stats_decay_tracks_skew() {
    let mut m = ClusteredMatcher::new_dynamic_with(DynamicConfig {
        period: 256,
        bm_max: 8.0,
        b_create: 200,
        b_delete: 0,
        max_schema_len: 2,
        min_gain: 0.0,
        decay_stats: true,
    });
    for i in 0..2000u32 {
        m.insert(sid(i), &pair_sub((i % 20) as i64, (i % 10) as i64));
    }
    // Uniform phase.
    feed_uniform_events(&mut m, 20, 500);
    let created_uniform = m.stats().tables_created;
    // Skewed phase: every event hits value 0 on attribute 0; margins of the
    // value-0 clusters explode and maintenance reorganises.
    let mut out = Vec::new();
    for i in 0..1500i64 {
        let e = Event::builder()
            .pair(a(0), 0i64)
            .pair(a(1), i % 10)
            .build()
            .unwrap();
        out.clear();
        m.match_event(&e, &mut out);
        // Subscriptions with i % 20 == 0 also have i % 10 == 0, so the
        // value-0 column matches all 100 of them when the event's second
        // value is 0, and none otherwise.
        let expect = if i % 10 == 0 { 100 } else { 0 };
        assert_eq!(out.len(), expect, "event {i}");
    }
    // The engine's optimal response here is *redistribution*, not table
    // creation: the 100 hot subscriptions (value 0 on attribute 0) move to
    // attribute 1's singleton table, whose value-clusters stay small, while
    // a pair table's total saving (~5 checks/event) would not pay for its
    // probe. Maintenance reorganised without creating anything.
    let _ = created_uniform;
    assert!(
        m.stats().subscription_moves > 0,
        "skew triggered redistribution"
    );
    let attr1_schema: pubsub_types::AttrSet = [a(1)].into_iter().collect();
    let attr1_pop = m
        .table_summary()
        .iter()
        .find(|(s, _, _)| *s == attr1_schema)
        .map(|(_, p, _)| *p)
        .unwrap_or(0);
    assert_eq!(
        attr1_pop,
        100,
        "the hot subscriptions escaped to attribute 1's table: {:?}",
        m.table_summary()
    );
}
