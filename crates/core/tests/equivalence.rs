//! Engine equivalence: every engine must produce exactly the match set of
//! the brute-force oracle, on random subscription/event streams with
//! interleaved insertions and deletions. This is the central correctness
//! property of the whole system.

use proptest::prelude::*;
use pubsub_core::{ClusteredMatcher, DynamicConfig, EngineKind, MatchEngine, ShardedMatcher};
use pubsub_types::{AttrId, Event, Operator, Predicate, Subscription, SubscriptionId, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    // Small domains make collisions (and therefore matches) frequent.
    (0i64..8).prop_map(Value::Int)
}

fn arb_operator() -> impl Strategy<Value = Operator> {
    prop::sample::select(Operator::ALL.to_vec())
}

fn arb_subscription() -> impl Strategy<Value = Subscription> {
    prop::collection::vec((0u32..6, arb_operator(), arb_value()), 1..6).prop_map(|triples| {
        let mut seen = std::collections::HashSet::new();
        let preds: Vec<Predicate> = triples
            .into_iter()
            .map(|(a, op, v)| Predicate::new(AttrId(a), op, v))
            .filter(|p| seen.insert(*p))
            .collect();
        Subscription::from_predicates(preds).expect("non-empty, deduped")
    })
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop::collection::btree_map(0u32..6, arb_value(), 1..6).prop_map(|m| {
        Event::from_pairs(m.into_iter().map(|(a, v)| (AttrId(a), v)).collect()).unwrap()
    })
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Subscription),
    RemoveNth(prop::sample::Index),
    Match(Event),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => arb_subscription().prop_map(Op::Insert),
            1 => any::<prop::sample::Index>().prop_map(Op::RemoveNth),
            3 => arb_event().prop_map(Op::Match),
        ],
        1..80,
    )
}

/// Runs the op stream against one engine and the oracle, comparing every
/// match set.
fn check_engine(mut engine: Box<dyn MatchEngine + Send>, ops: &[Op]) -> Result<(), TestCaseError> {
    let mut oracle = EngineKind::BruteForce.build();
    let mut live: Vec<SubscriptionId> = Vec::new();
    let mut next_id = 0u32;
    for op in ops {
        match op {
            Op::Insert(sub) => {
                let id = SubscriptionId(next_id);
                next_id += 1;
                engine.insert(id, sub);
                oracle.insert(id, sub);
                live.push(id);
            }
            Op::RemoveNth(n) => {
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(n.index(live.len()));
                engine.remove(id);
                oracle.remove(id);
            }
            Op::Match(event) => {
                let mut got = Vec::new();
                let mut want = Vec::new();
                engine.match_event(event, &mut got);
                oracle.match_event(event, &mut want);
                got.sort();
                want.sort();
                prop_assert_eq!(
                    &got,
                    &want,
                    "engine {} disagrees with oracle on {:?}",
                    engine.name(),
                    event
                );
                // No duplicates allowed either.
                let mut dedup = got.clone();
                dedup.dedup();
                prop_assert_eq!(dedup.len(), got.len(), "duplicate matches");
            }
        }
        prop_assert_eq!(engine.len(), oracle.len());
    }
    Ok(())
}

/// Like [`check_engine`], but events are buffered and delivered through
/// [`MatchEngine::match_batch_into`] in batches of `batch_size` (flushed
/// before every mutation, mirroring the broker's batched publish): the
/// batched phase-1 path must produce exactly the oracle's per-event match
/// sets.
fn check_engine_batched(
    mut engine: Box<dyn MatchEngine + Send>,
    ops: &[Op],
    batch_size: usize,
) -> Result<(), TestCaseError> {
    let mut oracle = EngineKind::BruteForce.build();
    let mut live: Vec<SubscriptionId> = Vec::new();
    let mut next_id = 0u32;
    let mut pending: Vec<Event> = Vec::new();
    let mut results: Vec<Vec<SubscriptionId>> = Vec::new();

    fn flush(
        engine: &mut Box<dyn MatchEngine + Send>,
        oracle: &mut Box<dyn MatchEngine + Send>,
        pending: &mut Vec<Event>,
        results: &mut Vec<Vec<SubscriptionId>>,
    ) -> Result<(), TestCaseError> {
        if pending.is_empty() {
            return Ok(());
        }
        engine.match_batch_into(pending, results);
        prop_assert_eq!(results.len(), pending.len());
        for (event, got) in pending.iter().zip(results.iter_mut()) {
            let mut want = Vec::new();
            oracle.match_event(event, &mut want);
            got.sort();
            want.sort();
            prop_assert_eq!(
                &*got,
                &want,
                "batched engine {} disagrees with oracle on {:?}",
                engine.name(),
                event
            );
            let mut dedup = got.clone();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), got.len(), "duplicate matches");
        }
        pending.clear();
        Ok(())
    }

    for op in ops {
        match op {
            Op::Insert(sub) => {
                flush(&mut engine, &mut oracle, &mut pending, &mut results)?;
                let id = SubscriptionId(next_id);
                next_id += 1;
                engine.insert(id, sub);
                oracle.insert(id, sub);
                live.push(id);
            }
            Op::RemoveNth(n) => {
                flush(&mut engine, &mut oracle, &mut pending, &mut results)?;
                if live.is_empty() {
                    continue;
                }
                let id = live.swap_remove(n.index(live.len()));
                engine.remove(id);
                oracle.remove(id);
            }
            Op::Match(event) => {
                pending.push(event.clone());
                if pending.len() >= batch_size {
                    flush(&mut engine, &mut oracle, &mut pending, &mut results)?;
                }
            }
        }
    }
    flush(&mut engine, &mut oracle, &mut pending, &mut results)?;
    prop_assert_eq!(engine.len(), oracle.len());
    Ok(())
}

/// The aggressive dynamic configuration: a tiny period and low thresholds
/// force the §4 maintenance machinery (table create/delete, relocation) to
/// run constantly, so matching correctness is exercised *mid-churn*.
fn aggressive_dynamic() -> ClusteredMatcher {
    ClusteredMatcher::new_dynamic_with(DynamicConfig {
        period: 3,
        bm_max: 0.05,
        b_create: 2,
        b_delete: 2,
        max_schema_len: 3,
        min_gain: 0.0,
        decay_stats: true,
    })
}

proptest! {
    // The acceptance bar for the differential harness: N ≥ 256 identical
    // random interleavings through *all five* paper engines at once.
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn all_engines_agree_on_identical_interleavings(ops in arb_ops()) {
        // One generated subscribe/unsubscribe/publish interleaving drives
        // every engine; after every publish, every engine's sorted match set
        // must equal the brute-force oracle's (hence each other's). The
        // aggressive-dynamic instance covers maintenance running mid-churn,
        // not just a statically clustered snapshot.
        let mut engines: Vec<Box<dyn MatchEngine + Send>> = vec![
            EngineKind::Counting.build(),
            EngineKind::Propagation.build(),
            EngineKind::PropagationPrefetch.build(),
            EngineKind::Static.build(),
            EngineKind::Dynamic.build(),
            Box::new(aggressive_dynamic()),
        ];
        let mut oracle = EngineKind::BruteForce.build();
        let mut live: Vec<SubscriptionId> = Vec::new();
        let mut next_id = 0u32;
        for op in &ops {
            match op {
                Op::Insert(sub) => {
                    let id = SubscriptionId(next_id);
                    next_id += 1;
                    for e in &mut engines {
                        e.insert(id, sub);
                    }
                    oracle.insert(id, sub);
                    live.push(id);
                }
                Op::RemoveNth(n) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.swap_remove(n.index(live.len()));
                    for e in &mut engines {
                        e.remove(id);
                    }
                    oracle.remove(id);
                }
                Op::Match(event) => {
                    let mut want = Vec::new();
                    oracle.match_event(event, &mut want);
                    want.sort();
                    for e in &mut engines {
                        let mut got = Vec::new();
                        e.match_event(event, &mut got);
                        got.sort();
                        prop_assert_eq!(
                            &got,
                            &want,
                            "engine {} diverges from oracle on {:?}",
                            e.name(),
                            event
                        );
                    }
                }
            }
            for e in &engines {
                prop_assert_eq!(e.len(), oracle.len());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn counting_matches_oracle(ops in arb_ops()) {
        check_engine(EngineKind::Counting.build(), &ops)?;
    }

    #[test]
    fn propagation_matches_oracle(ops in arb_ops()) {
        check_engine(EngineKind::Propagation.build(), &ops)?;
    }

    #[test]
    fn propagation_wp_matches_oracle(ops in arb_ops()) {
        check_engine(EngineKind::PropagationPrefetch.build(), &ops)?;
    }

    #[test]
    fn static_matches_oracle(ops in arb_ops()) {
        check_engine(EngineKind::Static.build(), &ops)?;
    }

    #[test]
    fn dynamic_matches_oracle(ops in arb_ops()) {
        check_engine(EngineKind::Dynamic.build(), &ops)?;
    }

    #[test]
    fn dynamic_with_aggressive_maintenance_matches_oracle(ops in arb_ops()) {
        // A tiny period and thresholds force maintenance to run constantly,
        // exercising table creation/deletion and relocation under churn.
        check_engine(Box::new(aggressive_dynamic()), &ops)?;
    }

    // Batched lanes: the same interleavings delivered through
    // `match_batch_into`, across every paper engine and batch sizes
    // {1, 7, 64} (proptest samples all sizes across cases). Batch size 1
    // pins the batched path's per-event degenerate case; 64 crosses the
    // block-mask boundary of the snapshot index.

    #[test]
    fn counting_batched_matches_oracle(
        ops in arb_ops(),
        batch in prop::sample::select(vec![1usize, 7, 64]),
    ) {
        check_engine_batched(EngineKind::Counting.build(), &ops, batch)?;
    }

    #[test]
    fn propagation_batched_matches_oracle(
        ops in arb_ops(),
        batch in prop::sample::select(vec![1usize, 7, 64]),
    ) {
        check_engine_batched(EngineKind::Propagation.build(), &ops, batch)?;
    }

    #[test]
    fn propagation_wp_batched_matches_oracle(
        ops in arb_ops(),
        batch in prop::sample::select(vec![1usize, 7, 64]),
    ) {
        check_engine_batched(EngineKind::PropagationPrefetch.build(), &ops, batch)?;
    }

    #[test]
    fn static_batched_matches_oracle(
        ops in arb_ops(),
        batch in prop::sample::select(vec![1usize, 7, 64]),
    ) {
        check_engine_batched(EngineKind::Static.build(), &ops, batch)?;
    }

    #[test]
    fn dynamic_batched_matches_oracle(
        ops in arb_ops(),
        batch in prop::sample::select(vec![1usize, 7, 64]),
    ) {
        check_engine_batched(EngineKind::Dynamic.build(), &ops, batch)?;
    }

    #[test]
    fn aggressive_dynamic_batched_matches_oracle(
        ops in arb_ops(),
        batch in prop::sample::select(vec![1usize, 7, 64]),
    ) {
        // Maintenance (table create/delete, relocation) firing *between*
        // events of one batch must not corrupt the remaining events'
        // phase-1 results.
        check_engine_batched(Box::new(aggressive_dynamic()), &ops, batch)?;
    }

    #[test]
    fn sharded_batched_matches_oracle(
        ops in arb_ops(),
        batch in prop::sample::select(vec![1usize, 7, 64]),
    ) {
        check_engine_batched(Box::new(ShardedMatcher::new(EngineKind::Dynamic, 3)), &ops, batch)?;
    }

    // The sharded layer must be exact for every shard count: shards
    // partition the subscriptions and each shard engine is exact, so the
    // merged result is the oracle's set. Inner kinds vary to spread
    // coverage across engines.

    #[test]
    fn sharded_1_matches_oracle(ops in arb_ops()) {
        check_engine(Box::new(ShardedMatcher::new(EngineKind::Dynamic, 1)), &ops)?;
    }

    #[test]
    fn sharded_2_matches_oracle(ops in arb_ops()) {
        check_engine(Box::new(ShardedMatcher::new(EngineKind::Counting, 2)), &ops)?;
    }

    #[test]
    fn sharded_3_matches_oracle(ops in arb_ops()) {
        check_engine(Box::new(ShardedMatcher::new(EngineKind::Dynamic, 3)), &ops)?;
    }

    #[test]
    fn sharded_7_matches_oracle(ops in arb_ops()) {
        check_engine(Box::new(ShardedMatcher::new(EngineKind::Propagation, 7)), &ops)?;
    }

    #[test]
    fn sharded_output_is_shard_count_invariant(ops in arb_ops()) {
        // Determinism contract (see `MatchEngine::match_event`): the merge
        // sorts by id, so two different shard counts produce byte-identical
        // outputs with no caller-side normalisation.
        let mut a = ShardedMatcher::new(EngineKind::Dynamic, 2);
        let mut b = ShardedMatcher::new(EngineKind::Dynamic, 7);
        let mut live: Vec<SubscriptionId> = Vec::new();
        let mut next_id = 0u32;
        for op in &ops {
            match op {
                Op::Insert(sub) => {
                    let id = SubscriptionId(next_id);
                    next_id += 1;
                    a.insert(id, sub);
                    b.insert(id, sub);
                    live.push(id);
                }
                Op::RemoveNth(n) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.swap_remove(n.index(live.len()));
                    a.remove(id);
                    b.remove(id);
                }
                Op::Match(event) => {
                    let mut got_a = Vec::new();
                    let mut got_b = Vec::new();
                    a.match_event(event, &mut got_a);
                    b.match_event(event, &mut got_b);
                    prop_assert_eq!(&got_a, &got_b, "shard counts 2 vs 7 diverge");
                    prop_assert!(got_a.windows(2).all(|w| w[0] < w[1]), "output sorted");
                }
            }
        }
    }

    #[test]
    fn sharded_recovers_mid_stream_and_stays_equivalent(ops in arb_ops()) {
        // Crash a shard in the middle of a random op stream (unknown-id
        // removes panic the shard engine) and keep going: the supervised
        // rebuild must restore exact equivalence for the rest of the
        // stream. Split the ops in half and inject the crash between them.
        let mut engine = ShardedMatcher::new(EngineKind::Counting, 2);
        let mut oracle = EngineKind::BruteForce.build();
        let mut live: Vec<SubscriptionId> = Vec::new();
        let mut next_id = 0u32;
        let half = ops.len() / 2;
        for (i, op) in ops.iter().enumerate() {
            if i == half {
                engine.remove(SubscriptionId(1_000_000));
                engine.remove(SubscriptionId(1_000_001));
            }
            match op {
                Op::Insert(sub) => {
                    let id = SubscriptionId(next_id);
                    next_id += 1;
                    engine.insert(id, sub);
                    oracle.insert(id, sub);
                    live.push(id);
                }
                Op::RemoveNth(n) => {
                    if live.is_empty() {
                        continue;
                    }
                    let id = live.swap_remove(n.index(live.len()));
                    engine.remove(id);
                    oracle.remove(id);
                }
                Op::Match(event) => {
                    let mut got = Vec::new();
                    let mut want = Vec::new();
                    engine.match_event(event, &mut got);
                    oracle.match_event(event, &mut want);
                    want.sort();
                    prop_assert_eq!(&got, &want, "post-crash divergence on {:?}", event);
                }
            }
            prop_assert_eq!(engine.len(), oracle.len());
        }
    }

    #[test]
    fn static_finalize_preserves_semantics(
        subs in prop::collection::vec(arb_subscription(), 1..40),
        events in prop::collection::vec(arb_event(), 1..10),
    ) {
        // Insert everything, warm statistics, finalize, then compare.
        let mut engine = EngineKind::Static.build();
        let mut oracle = EngineKind::BruteForce.build();
        for (i, sub) in subs.iter().enumerate() {
            engine.insert(SubscriptionId(i as u32), sub);
            oracle.insert(SubscriptionId(i as u32), sub);
        }
        let mut sink = Vec::new();
        for e in &events {
            engine.match_event(e, &mut sink);
            sink.clear();
        }
        engine.finalize();
        for e in &events {
            let mut got = Vec::new();
            let mut want = Vec::new();
            engine.match_event(e, &mut got);
            oracle.match_event(e, &mut want);
            got.sort();
            want.sort();
            prop_assert_eq!(got, want);
        }
    }
}

/// Regression: a subscription removed before a shard crash (the broker's
/// explicit unsubscribe and validity expiry both reduce to
/// `MatchEngine::remove`) must not be resurrected when the crashed shard is
/// rebuilt from its authoritative log.
#[test]
fn removed_ids_are_not_resurrected_by_shard_rebuild() {
    let mut m = ShardedMatcher::new(EngineKind::Dynamic, 3);
    let sub =
        Subscription::from_predicates(vec![Predicate::new(AttrId(0), Operator::Eq, Value::Int(1))])
            .unwrap();
    for i in 0..30 {
        m.insert(SubscriptionId(i), &sub);
    }
    let expired = [0u32, 7, 13, 29];
    for i in expired {
        m.remove(SubscriptionId(i));
    }
    // Crash the shards (unknown-id removes panic the shard engines); the
    // supervisor rebuilds each crashed shard by replaying its log, which by
    // then no longer contains the expired ids.
    for i in 1000..1010u32 {
        m.remove(SubscriptionId(i));
    }
    let event = Event::from_pairs(vec![(AttrId(0), Value::Int(1))]).unwrap();
    let mut out = Vec::new();
    m.match_event(&event, &mut out);
    let want: Vec<SubscriptionId> = (0..30)
        .filter(|i| !expired.contains(i))
        .map(SubscriptionId)
        .collect();
    assert_eq!(out, want, "expired ids must stay gone after the rebuild");
    let health = m.shard_health().unwrap();
    assert!(health.shard_rebuilds >= 1, "the crash forced a rebuild");
    assert_eq!(m.len(), 26);
}
