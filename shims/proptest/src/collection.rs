//! Collection strategies: `vec`, `btree_map`, `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::{BTreeMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;
use std::ops::Range;

/// Size bounds for generated collections (real proptest's `SizeRange`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (exclusive).
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.core().gen_range(self.min..self.max)
    }
}

/// A `Vec` of values drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// How many extra draws distinct-key collections spend trying to reach their
/// target size before settling for fewer entries.
const DEDUP_PATIENCE: usize = 64;

/// A `BTreeMap` with keys from `key` and values from `value`. Duplicate keys
/// collapse, so the result can be smaller than the drawn size (as upstream).
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V> {
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.draw(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0;
        while map.len() < target && attempts < target + DEDUP_PATIENCE {
            attempts += 1;
            map.insert(self.key.generate(rng), self.value.generate(rng));
        }
        map
    }
}

/// A `HashSet` of values drawn from `element`. Duplicates collapse, so the
/// result can be smaller than the drawn size (as upstream).
pub fn hash_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S> {
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for HashSetStrategy<S>
where
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.draw(rng);
        let mut set = HashSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target + DEDUP_PATIENCE {
            attempts += 1;
            set.insert(self.element.generate(rng));
        }
        set
    }
}
