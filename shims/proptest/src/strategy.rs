//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// How many times `prop_filter` retries before giving up.
const FILTER_RETRIES: usize = 1_000;

/// A generator of test-case values.
///
/// The shim generates eagerly from an RNG — there is no value tree and no
/// shrinking, but the combinator surface matches real proptest.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying generation. Panics if
    /// the predicate rejects [`FILTER_RETRIES`] draws in a row.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter exhausted {FILTER_RETRIES} retries: {}",
            self.reason
        );
    }
}

/// Weighted choice between same-valued strategies (see [`prop_oneof!`]).
pub struct OneOf<V> {
    choices: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: Debug> OneOf<V> {
    /// Builds from `(weight, strategy)` pairs. Panics on empty input or
    /// all-zero weights.
    pub fn new(choices: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = choices.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Self { choices, total }
    }
}

impl<V: Debug> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut ticket = rng.core().gen_range(0..self.total);
        for (w, s) in &self.choices {
            if ticket < *w as u64 {
                return s.generate(rng);
            }
            ticket -= *w as u64;
        }
        unreachable!("ticket within total weight")
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.core().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.core().gen_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// String literals act as regex-shaped string generators (see
/// [`crate::string`] for the supported subset).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($name:ident . $idx:tt),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_for_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Marker so `PhantomData` fields elsewhere don't trip unused-import lints.
#[allow(dead_code)]
pub(crate) type Ignore<T> = PhantomData<T>;
