//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace patches
//! `proptest` to this self-contained property-testing harness. It implements
//! the subset of the proptest 1.x API this workspace's tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * strategies: integer ranges, `&str` regex literals (a small regex
//!   subset), tuples, [`prop_oneof!`], `prop::collection::{vec, btree_map,
//!   hash_set}`, `prop::sample::{select, Index}`, [`any`], `prop_map`,
//!   `prop_filter`, `Just`.
//!
//! Test cases are generated from a deterministic per-test seed, so failures
//! reproduce across runs. Unlike real proptest there is **no shrinking**: a
//! failing case is reported verbatim (inputs are printed via `Debug`).

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;
pub use strategy::{BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// The `prop::` namespace (`prop::collection`, `prop::sample`) as re-exported
/// by the real crate's prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything tests usually import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body (or any function returning
/// `Result<_, TestCaseError>`), failing the test case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pa_l, __pa_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__pa_l == *__pa_r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __pa_l,
            __pa_r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__pa_l, __pa_r) = (&$left, &$right);
        if !(*__pa_l == *__pa_r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
                __pa_l,
                __pa_r,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__pa_l, __pa_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__pa_l != *__pa_r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __pa_l
        );
    }};
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — one arm per test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr); ) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $config;
            let __cases = __config.effective_cases();
            for __case in 0..__cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($("  ", stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                match __outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(err)) => panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n{}",
                        __case + 1, __cases, err, __inputs
                    ),
                    Err(panic) => {
                        eprintln!(
                            "proptest case {}/{} panicked; inputs:\n{}",
                            __case + 1, __cases, __inputs
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config); $($rest)* }
    };
}
