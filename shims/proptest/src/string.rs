//! String generation from a small regex subset.
//!
//! `&'static str` strategies interpret the literal as a regex, like real
//! proptest. The shim supports the constructs this workspace's tests use:
//!
//! * literal characters,
//! * `.` — any printable character except newline (ASCII plus a small
//!   unicode sample, including quotes and backslashes),
//! * `[...]` character classes with ranges (`a-z`) and literals; a leading
//!   or trailing `-` is literal,
//! * `{m,n}` bounded repetition of the preceding atom.
//!
//! Anything else panics loudly rather than silently generating the wrong
//! language.

use crate::test_runner::TestRng;
use rand::Rng;

/// Troublesome printable characters `.` deliberately over-samples: quoting
/// and escaping bugs live here.
const DOT_EXTRAS: &[char] = &[
    '"', '\'', '\\', '\t', ' ', 'é', 'ß', '汉', 'Ω', '🦀', '\u{200b}',
];

#[derive(Debug, Clone)]
enum CharSet {
    /// `.`
    AnyPrintable,
    /// `[...]` — inclusive ranges (singletons are `(c, c)`).
    Ranges(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set = match c {
            '.' => CharSet::AnyPrintable,
            '[' => {
                let mut ranges = Vec::new();
                let mut class: Vec<char> = Vec::new();
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some(c) => class.push(c),
                        None => panic!("unterminated [class] in regex {pattern:?}"),
                    }
                }
                let mut i = 0;
                while i < class.len() {
                    if i + 2 < class.len() && class[i + 1] == '-' {
                        ranges.push((class[i], class[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((class[i], class[i]));
                        i += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty [class] in regex {pattern:?}");
                CharSet::Ranges(ranges)
            }
            '\\' => {
                let c = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling backslash in regex {pattern:?}"));
                CharSet::Ranges(vec![(c, c)])
            }
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                panic!("regex construct {c:?} not supported by the proptest shim ({pattern:?})")
            }
            c => CharSet::Ranges(vec![(c, c)]),
        };
        // Optional {m,n} quantifier.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
            let (m, n) = body
                .split_once(',')
                .unwrap_or_else(|| panic!("only {{m,n}} quantifiers supported ({pattern:?})"));
            (
                m.trim().parse().expect("quantifier lower bound"),
                n.trim().parse().expect("quantifier upper bound"),
            )
        } else {
            (1, 1)
        };
        atoms.push(Atom { set, min, max });
    }
    atoms
}

fn draw_char(set: &CharSet, rng: &mut TestRng) -> char {
    match set {
        CharSet::AnyPrintable => {
            // 1-in-4: a troublesome character; otherwise printable ASCII.
            if rng.core().gen_range(0u32..4) == 0 {
                DOT_EXTRAS[rng.core().gen_range(0..DOT_EXTRAS.len())]
            } else {
                char::from_u32(rng.core().gen_range(0x20u32..0x7f)).unwrap()
            }
        }
        CharSet::Ranges(ranges) => {
            let total: u32 = ranges.iter().map(|(a, b)| *b as u32 - *a as u32 + 1).sum();
            let mut ticket = rng.core().gen_range(0..total);
            for (a, b) in ranges {
                let span = *b as u32 - *a as u32 + 1;
                if ticket < span {
                    return char::from_u32(*a as u32 + ticket).expect("class range is valid");
                }
                ticket -= span;
            }
            unreachable!("ticket within class cardinality")
        }
    }
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let n = rng.core().gen_range(atom.min..=atom.max);
        for _ in 0..n {
            out.push(draw_char(&atom.set, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("string-tests", 0)
    }

    #[test]
    fn identifier_pattern() {
        let mut rng = rng();
        for _ in 0..500 {
            let s = generate("[a-z_][a-z0-9_.-]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let mut cs = s.chars();
            let head = cs.next().unwrap();
            assert!(head.is_ascii_lowercase() || head == '_', "{s:?}");
            for c in cs {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || "_.-".contains(c),
                    "{s:?}"
                );
            }
        }
    }

    #[test]
    fn dot_pattern_hits_troublesome_chars() {
        let mut rng = rng();
        let mut saw_quote = false;
        let mut saw_backslash = false;
        for _ in 0..500 {
            let s = generate(".{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            assert!(!s.contains('\n'));
            saw_quote |= s.contains('\'') || s.contains('"');
            saw_backslash |= s.contains('\\');
        }
        assert!(saw_quote && saw_backslash);
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn unsupported_constructs_panic() {
        generate("(a|b)+", &mut rng());
    }
}
