//! Sampling strategies: `select` and `Index`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;

/// Uniform choice from a fixed list.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from an empty list");
    Select { options }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.core().gen_range(0..self.options.len());
        self.options[i].clone()
    }
}

/// An index into a collection whose length is only known at use time —
/// `idx.index(len)` maps it uniformly into `0..len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Creates an index from raw bits (used by `any::<Index>()`).
    pub(crate) fn from_raw(raw: u64) -> Self {
        Self { raw }
    }

    /// This index mapped into `0..len`. Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.raw % len as u64) as usize
    }
}
