//! Test-case plumbing: configuration, failure type, deterministic RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim trades a little coverage
        // for test-suite latency. Override with `with_cases`.
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The case count the runner actually uses: `cases`, capped by the
    /// `PROPTEST_CASES` environment variable when set (upstream proptest
    /// reads the same variable). Lets fast CI lanes (e.g.
    /// `scripts/check.sh --bench-smoke`) bound long property tests without
    /// touching the source.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => match v.trim().parse::<u32>() {
                Ok(cap) => self.cases.min(cap.max(1)),
                Err(_) => self.cases,
            },
            Err(_) => self.cases,
        }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A test-case failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }

    /// Upstream distinguishes rejects from failures; the shim treats a
    /// reject as a failure (filters retry internally instead).
    pub fn reject(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic RNG for case number `case` of the named test. The
    /// stream depends only on `(name, case)`, so failures reproduce.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self(SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5bd1)))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// The underlying [`rand::RngCore`].
    pub fn core(&mut self) -> &mut dyn RngCore {
        &mut self.0
    }
}
