//! `any::<T>()` — strategies derived from a type alone.

use crate::sample::Index;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng, Standard};
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_via_standard {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.core().gen::<$t>()
            }
        }
    )*};
}

impl_arbitrary_via_standard!(bool, u8, u32, u64, i32, i64, usize);

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index::from_raw(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// `Standard` must stay imported for the macro expansion above.
#[allow(unused)]
fn _assert_standard_in_scope(rng: &mut TestRng) -> bool {
    <bool as Standard>::draw(rng.core())
}
