//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace patches
//! `rand` to this self-contained implementation. It provides the subset of
//! the rand 0.8 API the workspace uses — `SmallRng`/`StdRng`,
//! `SeedableRng::{seed_from_u64, from_seed}`, `Rng::{gen, gen_range,
//! gen_bool, fill}` over integer ranges — backed by xoshiro256++.
//!
//! Streams are deterministic given a seed but do **not** reproduce upstream
//! rand's streams; workload draws are reproducible within this repo only.

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (the subset of `rand_core::RngCore` used).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Creates an RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG from a `u64` seed (SplitMix64-expanded, as upstream).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 — the same expansion upstream rand_core uses.
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`. `lo < hi` must hold.
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`. `lo <= hi` must hold.
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

/// Range argument to [`Rng::gen_range`] (rand 0.8's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform + PartialOrd + Copy + std::fmt::Debug> SampleRange<T> for Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty range {:?}", self);
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy + std::fmt::Debug> SampleRange<T> for RangeInclusive<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Rejection-free-ish uniform draw from `[0, span)` via Lemire's method
/// with a widening multiply; falls back to rejection for the rare biased
/// window.
fn uniform_u64(rng: &mut dyn RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int! {
    i64 => u64, u64 => u64, i32 => u32, u32 => u32,
    usize => u64, isize => u64, u16 => u16, i16 => u16, u8 => u8, i8 => u8,
}

/// Types producible by [`Rng::gen`] (rand's `Standard` distribution subset).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u8 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as u8
    }
}
impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}
impl Standard for i32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32() as i32
    }
}
impl Standard for i64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as i64
    }
}
impl Standard for usize {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level draws, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::draw(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<T: RngCore> Rng for T {}

/// The `rand::prelude`-alike for callers that glob-import.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(1i64..=35);
            assert!((1..=35).contains(&v));
            let w = r.gen_range(3usize..17);
            assert!((3..17).contains(&w));
            let n = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 35];
        for _ in 0..2_000 {
            seen[(r.gen_range(1i64..=35) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 35 values drawn");
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = SmallRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads={heads}");
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut r = SmallRng::seed_from_u64(4);
        let _: u64 = r.gen_range(0u64..=u64::MAX);
        let _: i64 = r.gen_range(i64::MIN..=i64::MAX);
    }
}
