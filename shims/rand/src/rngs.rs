//! Concrete RNGs: xoshiro256++ behind the `SmallRng`/`StdRng` names.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — small, fast, and statistically solid; the same family
/// upstream `SmallRng` uses on 64-bit targets.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    #[inline]
    fn step(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for Xoshiro256PlusPlus {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

impl SeedableRng for Xoshiro256PlusPlus {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is a fixed point; nudge it (cannot occur via
        // seed_from_u64's SplitMix64 expansion, but from_seed is public).
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        Self { s }
    }
}

/// A small, fast RNG (this shim: xoshiro256++).
pub type SmallRng = Xoshiro256PlusPlus;

/// The "standard" RNG. Upstream this is ChaCha12; the shim reuses
/// xoshiro256++ — adequate for workload generation, **not** for
/// cryptographic use.
pub type StdRng = Xoshiro256PlusPlus;
