//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace patches
//! `criterion` to this minimal harness. It keeps the `criterion_group!` /
//! `criterion_main!` / `benchmark_group` / `bench_with_input` / `Bencher`
//! API the workspace's benches use, calibrates iteration counts to a small
//! per-benchmark time budget, and prints one plain-text line per benchmark:
//!
//! ```text
//! group/id                time:   12.345 µs/iter  (24 samples)  81.0 Kelem/s
//! ```
//!
//! There is no statistical analysis, HTML report, or baseline comparison.
//! Passing `--test` (as `cargo test` does for bench targets) runs each
//! benchmark once, only checking it executes.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget one benchmark's measurement phase aims for.
const MEASURE_BUDGET: Duration = Duration::from_millis(200);
/// Budget for the calibration phase.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Reads harness flags (`--test`, `--bench`) from the command line, as
    /// cargo passes them. Unknown flags (filters, `--save-baseline`, …) are
    /// ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifies one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f`, handing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id, |b| f(b, input));
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    fn run(&mut self, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.id);
        if self.criterion.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("{label}: test-mode ok");
            return;
        }
        // Calibration: grow the iteration count geometrically until one
        // sample is long enough to time reliably. The per-iteration estimate
        // is kept in float nanoseconds: `Duration` division truncates to
        // whole nanoseconds, so a sub-nanosecond body (a trivial benchmark
        // in an optimized build) would round up to 1 ns, make `want`
        // undershoot the current count, and stall the growth at +1 per
        // round. The `iters * 2` floor guarantees termination in ≤ 30
        // rounds regardless of the estimate.
        let mut iters: u64 = 1;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= WARMUP_BUDGET || iters >= 1 << 30 {
                break;
            }
            let per_iter_ns = (b.elapsed.as_nanos() as f64 / iters as f64).max(1e-3);
            let want = (WARMUP_BUDGET.as_nanos() as f64 / per_iter_ns) as u64 + 1;
            iters = want.clamp(iters * 2, iters * 20);
        }
        // Measurement: split the budget into samples, scaling the calibrated
        // iteration count from the warm-up budget to the per-sample budget.
        let samples = self.sample_size;
        let sample_iters = ((iters as u128 * MEASURE_BUDGET.as_nanos() / WARMUP_BUDGET.as_nanos())
            / samples as u128)
            .clamp(1, u64::MAX as u128) as u64;
        let mut times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut b = Bencher {
                iters: sample_iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            times.push(b.elapsed.as_secs_f64() / sample_iters as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!("  {}elem/s", si(n as f64 / median)),
            Some(Throughput::Bytes(n)) => format!("  {}B/s", si(n as f64 / median)),
            None => String::new(),
        };
        println!(
            "{label:<48} time: {:>12}/iter  ({samples} samples x {sample_iters} iters){rate}",
            fmt_time(median)
        );
    }

    /// Ends the group (reporting is per-benchmark; this is a no-op kept for
    /// API compatibility).
    pub fn finish(&mut self) {}
}

/// Times the closure passed to [`Bencher::iter`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the harness-chosen number of iterations, timing the
    /// whole batch.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim-selftest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("id-from-str", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn runs_in_test_mode_and_measure_mode() {
        let mut c = Criterion { test_mode: true };
        trivial_bench(&mut c);
        let mut c = Criterion { test_mode: false };
        trivial_bench(&mut c);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(2.0), "2.000 s");
        assert_eq!(fmt_time(2e-3), "2.000 ms");
        assert_eq!(fmt_time(2e-6), "2.000 µs");
        assert_eq!(fmt_time(2e-9), "2.0 ns");
        assert!(si(5e9).starts_with("5.00 G"));
    }
}
