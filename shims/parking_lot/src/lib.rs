//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so the workspace patches
//! `parking_lot` to this thin wrapper over `std::sync`. Semantics match the
//! subset the workspace uses: non-poisoning `lock()`/`read()`/`write()` that
//! simply continue after a panicking holder (parking_lot has no poisoning at
//! all, so ignoring poison is the faithful translation).

use std::sync::{self, TryLockError};

/// A mutual-exclusion primitive (non-poisoning `lock`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock (non-poisoning `read`/`write`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
