//! Durable broker quickstart: crash-recoverable subscriptions.
//!
//! A durable broker writes every subscription, unsubscription and clock
//! advance to a segmented write-ahead log *before* applying it, so a process
//! that dies at any instant — even mid-write — reopens to exactly the state
//! it had acknowledged. This example subscribes, "crashes" (drops the broker
//! without any shutdown handshake), reopens the same directory and shows the
//! subscriptions matching again.
//!
//! Run with: `cargo run --example durable_broker`

use fastpubsub::broker::{LogicalTime, SharedBroker, Validity};
use fastpubsub::core::EngineKind;
use fastpubsub::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join(format!("fastpubsub-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create WAL directory");

    // ---- First life: subscribe, publish, crash. -------------------------
    let (broker, report) =
        SharedBroker::open_durable(EngineKind::Dynamic, 2, &dir).expect("open durable broker");
    println!(
        "opened {} (fresh: replayed {} op(s))",
        dir.display(),
        report.records_replayed
    );

    let movie = broker.attr("movie");
    let price = broker.attr("price");
    let groundhog_day = broker.string("groundhog day");

    let forever = Subscription::builder()
        .eq(movie, groundhog_day)
        .with(price, Operator::Le, 10i64)
        .build()
        .expect("valid subscription");
    let ticket_id = broker.subscribe(forever, Validity::forever());

    let flash_sale = Subscription::builder()
        .with(price, Operator::Lt, 5i64)
        .build()
        .expect("valid subscription");
    // This one expires at t=3; the expiry is re-derived on replay, never
    // logged.
    let sale_id = broker.subscribe(flash_sale, Validity::until(LogicalTime(3)));

    let event = Event::builder()
        .pair(movie, groundhog_day)
        .pair(price, 4i64)
        .build()
        .expect("valid event");
    let mut matched = broker.publish(&event);
    matched.sort();
    println!("before crash: matched {matched:?}");
    assert_eq!(matched, vec![ticket_id, sale_id]);

    // Simulated crash: drop the handle with no shutdown protocol. The WAL
    // already holds both subscriptions (WAL-before-apply), so nothing is
    // lost. A *real* kill -9 mid-append would at worst leave a torn final
    // record, which the next open truncates away and reports.
    drop(broker);
    println!("crash! (process state gone, directory intact)");

    // ---- Second life: reopen and keep serving. --------------------------
    let (broker, report) =
        SharedBroker::open_durable(EngineKind::Dynamic, 2, &dir).expect("recover durable broker");
    println!(
        "recovered: replayed {} op(s), torn tail truncated: {:?}",
        report.records_replayed, report.torn_tail_truncated
    );

    // Vocabulary ids are replayed too — reopened handles resolve the same
    // names to the same ids.
    assert_eq!(broker.attr("movie"), movie);
    let mut matched = broker.publish(&event);
    matched.sort();
    println!("after recovery: matched {matched:?}");
    assert_eq!(matched, vec![ticket_id, sale_id], "nothing lost");

    // The logical clock is durable as well: advancing past t=3 expires the
    // flash-sale subscription exactly as it would have in the first life.
    let expired = broker.advance_to(LogicalTime(3));
    println!("advanced to t3: {expired} subscription(s) expired");
    assert_eq!(broker.publish(&event), vec![ticket_id]);

    // A snapshot captures the live state and compacts the log, bounding
    // future recovery time.
    let path = broker.snapshot().expect("snapshot");
    println!("snapshot written: {}", path.display());
    let status = broker.durability().expect("durable");
    println!(
        "wal: next-lsn {} ops-since-snapshot {} degraded {}",
        status.next_lsn, status.ops_since_snapshot, status.degraded
    );

    std::fs::remove_dir_all(&dir).expect("cleanup");
    println!("durable broker OK");
}
