//! Adaptive clustering under interest drift — the paper's election-news
//! scenario (§6.2.2): "a few days before the election of the US president,
//! everybody may want to know about the candidates; at the same time, more
//! and more information is published on this subject."
//!
//! Demonstrates the dynamic maintenance algorithm (§4) reacting to a burst
//! of skewed subscriptions: watch the engine create multi-attribute hash
//! tables as the "election" cluster grows, and the expected checks per
//! event stay flat instead of degrading.
//!
//! Run with: `cargo run --release --example adaptive_news`

use fastpubsub::core::{ClusteredMatcher, DynamicConfig, MatchEngine};
use fastpubsub::types::{AttrId, Event, Subscription, SubscriptionId, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const TOPIC: u32 = 0;
const REGION: u32 = 1;
const SOURCE: u32 = 2;

fn main() {
    let mut engine = ClusteredMatcher::new_dynamic_with(DynamicConfig {
        period: 2_000,
        bm_max: 8.0,
        b_create: 500,
        ..DynamicConfig::default()
    });
    let mut rng = SmallRng::seed_from_u64(2026);
    let mut next_id = 0u32;
    let mut out = Vec::new();

    // Phase 1: broad, uniform interests over 50 topics × 20 regions.
    for _ in 0..5_000 {
        let sub = Subscription::builder()
            .eq(AttrId(TOPIC), rng.gen_range(0..50i64))
            .eq(AttrId(REGION), rng.gen_range(0..20i64))
            .build()
            .unwrap();
        engine.insert(SubscriptionId(next_id), &sub);
        next_id += 1;
    }
    let publish = |engine: &mut ClusteredMatcher,
                   rng: &mut SmallRng,
                   out: &mut Vec<_>,
                   election_share: f64,
                   n: usize| {
        for _ in 0..n {
            let topic = if rng.gen_bool(election_share) {
                42 // the election
            } else {
                rng.gen_range(0..50i64)
            };
            let e = Event::builder()
                .pair(AttrId(TOPIC), topic)
                .pair(AttrId(REGION), rng.gen_range(0..20i64))
                .pair(AttrId(SOURCE), Value::Int(rng.gen_range(0..10i64)))
                .build()
                .unwrap();
            out.clear();
            engine.match_event(&e, out);
        }
    };
    publish(&mut engine, &mut rng, &mut out, 0.02, 4_000);
    engine.reset_stats();
    publish(&mut engine, &mut rng, &mut out, 0.02, 1_000);
    println!(
        "uniform interest:  {:>6.1} checks/event, {} tables",
        engine.stats().checks_per_event(),
        engine.table_summary().len()
    );

    // Phase 2: election fever — a flood of subscriptions on topic 42 and
    // skewed events to match.
    for _ in 0..20_000 {
        let sub = Subscription::builder()
            .eq(AttrId(TOPIC), 42i64)
            .eq(AttrId(REGION), rng.gen_range(0..20i64))
            .build()
            .unwrap();
        engine.insert(SubscriptionId(next_id), &sub);
        next_id += 1;
    }
    publish(&mut engine, &mut rng, &mut out, 0.5, 8_000);
    // Snapshot maintenance counters before resetting for the measurement.
    let (created, moves) = (
        engine.stats().tables_created,
        engine.stats().subscription_moves,
    );

    engine.reset_stats();
    publish(&mut engine, &mut rng, &mut out, 0.5, 1_000);
    let tables = engine.table_summary();
    println!(
        "election fever:    {:>6.1} checks/event, {} tables (created {}, moves {})",
        engine.stats().checks_per_event(),
        tables.len(),
        created,
        moves,
    );
    for (schema, pop, entries) in &tables {
        let attrs: Vec<u32> = schema.iter().map(|a| a.0).collect();
        println!("  table {attrs:?}: {pop} subscriptions, {entries} entries");
    }

    assert!(
        tables.iter().any(|(s, _, _)| s.len() >= 2),
        "maintenance should have created a multi-attribute table"
    );
    println!("adaptive_news OK");
}
