//! DNF subscriptions through the textual language — the "bargain hunter
//! with alternatives" scenario.
//!
//! The paper's conclusion notes the filter already supports disjunctive
//! normal form conditions; here a subscriber watches two airports with
//! different price caps in a single user-level subscription, written in the
//! `pubsub-lang` text syntax, and is notified exactly once per matching
//! offer even when several disjuncts fire.
//!
//! Run with: `cargo run --example dnf_alerts`

use fastpubsub::broker::{Broker, DnfRegistry, DnfSubscription, Validity};
use fastpubsub::core::EngineKind;
use fastpubsub::lang::{parse_event, parse_subscription};

fn main() {
    let mut broker = Broker::new(EngineKind::Dynamic);
    let mut registry = DnfRegistry::new();

    let expr = "(from = 'NYC' AND to = 'SFO' AND price < 400) OR \
                (from = 'EWR' AND to = 'SFO' AND price < 350)";
    let parsed = parse_subscription(expr, broker.vocabulary_mut())
        .unwrap_or_else(|e| panic!("{}", e.render(expr)));
    println!("subscription: {expr}");
    println!("  -> {} disjuncts", parsed.disjuncts.len());
    let dnf = DnfSubscription::new(parsed.disjuncts).unwrap();
    let id = registry.subscribe(&mut broker, dnf, Validity::forever());

    let offers = [
        ("{from: 'NYC', to: 'SFO', price: 380}", true),
        ("{from: 'NYC', to: 'SFO', price: 450}", false),
        ("{from: 'EWR', to: 'SFO', price: 340}", true),
        ("{from: 'EWR', to: 'SFO', price: 380}", false),
        ("{from: 'NYC', to: 'LAX', price: 200}", false),
    ];
    for (text, expect) in offers {
        let event = parse_event(text, broker.vocabulary_mut()).unwrap();
        let (dnf_hits, _) = registry.publish(&mut broker, &event);
        let notified = dnf_hits.contains(&id);
        println!(
            "offer {text} -> {}",
            if notified { "ALERT" } else { "ignored" }
        );
        assert_eq!(notified, expect, "offer {text}");
        assert!(dnf_hits.len() <= 1, "never more than one notification");
    }

    println!("dnf_alerts OK");
}
