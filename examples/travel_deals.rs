//! Travel deals: short-lived subscriptions and the valid-event store.
//!
//! The paper's motivating example (§1): "a user may want to go from New
//! York to California in the next 24 hours but only if he can get a flight
//! for under $400. Such a subscription would be short-lived."
//!
//! This example shows both directions of the broker:
//! * events are matched against live subscriptions (notification),
//! * *new* subscriptions are matched against stored valid events (replay),
//!
//! plus validity-driven expiry of both.
//!
//! Run with: `cargo run --example travel_deals`

use fastpubsub::broker::LogicalTime;
use fastpubsub::prelude::*;

fn main() {
    let mut broker = Broker::new(EngineKind::Dynamic);
    let from = broker.attr("from");
    let to = broker.attr("to");
    let price = broker.attr("price");
    let airline = broker.attr("airline");

    let nyc = broker.string("NYC");
    let sfo = broker.string("SFO");
    let lax = broker.string("LAX");
    let oceanic = broker.string("Oceanic");

    // One tick = one hour. The bargain hunter's subscription lives 24h.
    let hunter = Subscription::builder()
        .eq(from, nyc)
        .eq(to, sfo)
        .with(price, Operator::Lt, 400i64)
        .build()
        .unwrap();
    let hunter_id = broker.subscribe(hunter, Validity::starting_at(broker.now(), 24));
    println!("bargain hunter subscribed (valid 24h) -> {hunter_id}");

    // Offers are published with their own validity (bookable window).
    let offers = [
        (nyc, sfo, 520i64, 48u64), // too expensive for the hunter
        (nyc, lax, 310, 48),       // wrong destination
        (nyc, sfo, 385, 48),       // the deal
    ];
    let mut deal_event = None;
    for (f, t, p, hours) in offers {
        let event = Event::builder()
            .pair(from, f)
            .pair(to, t)
            .pair(price, p)
            .pair(airline, oceanic)
            .build()
            .unwrap();
        let note =
            broker.publish_with_validity(event.clone(), Validity::starting_at(broker.now(), hours));
        println!(
            "offer {} -> notified {:?}",
            event.display(broker.vocabulary()),
            note.matched
        );
        if p == 385 {
            assert_eq!(note.matched, vec![hunter_id]);
            deal_event = note.event;
        } else {
            assert!(note.matched.is_empty());
        }
    }

    // A second traveller subscribes *after* the offers were published: the
    // broker replays the stored valid events that already satisfy them.
    let flexible = Subscription::builder()
        .eq(from, nyc)
        .with(price, Operator::Lt, 350i64)
        .build()
        .unwrap();
    let (_, replay) =
        broker.subscribe_with_replay(flexible, Validity::starting_at(broker.now(), 24));
    println!("late subscriber replayed {} stored offer(s)", replay.len());
    assert_eq!(replay.len(), 1, "only the $310 LAX offer is under $350");

    // 24 hours later the hunter's subscription has expired...
    let (expired_subs, _) = broker.advance_to(LogicalTime(24));
    println!("t=24h: {expired_subs} subscription(s) expired");
    let again = Event::builder()
        .pair(from, nyc)
        .pair(to, sfo)
        .pair(price, 385i64)
        .build()
        .unwrap();
    assert!(
        broker.publish(&again).is_empty(),
        "expired hunter is not notified"
    );

    // ... and 48 hours in, the offers leave the store too.
    let (_, evicted) = broker.advance_to(LogicalTime(48));
    println!("t=48h: {evicted} stored offer(s) evicted");
    assert_eq!(broker.stored_event_count(), 0);
    assert!(deal_event.is_some());

    println!("travel_deals OK");
}
