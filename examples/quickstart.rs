//! Quickstart: the paper's running example — movie ticket offers.
//!
//! A subscription is a conjunction of `(attribute, operator, value)`
//! predicates; an event is a set of `(attribute, value)` pairs. The broker
//! returns, for each published event, the subscriptions it satisfies.
//!
//! Run with: `cargo run --example quickstart`

use fastpubsub::prelude::*;

fn main() {
    // The dynamic engine is the paper's best performer and the right
    // default: it adapts its index configuration to the workload.
    let mut broker = Broker::new(EngineKind::Dynamic);

    let movie = broker.attr("movie");
    let price = broker.attr("price");
    let theater = broker.attr("theater");
    let groundhog_day = broker.string("groundhog day");
    let odeon = broker.string("odeon");

    // "(movie, groundhog day, =), (price, $10, <=), (price, $5, >)" — the
    // subscription from §1.1 of the paper.
    let sub = Subscription::builder()
        .eq(movie, groundhog_day)
        .with(price, Operator::Le, 10i64)
        .with(price, Operator::Gt, 5i64)
        .build()
        .expect("valid subscription");
    println!("subscribing: {}", sub.display(broker.vocabulary()));
    let id = broker.subscribe(sub, Validity::forever());

    // "(movie, groundhog day), (price, $8), (theater, odeon)" — the event
    // from §1.1; it satisfies the subscription.
    let event = Event::builder()
        .pair(movie, groundhog_day)
        .pair(price, 8i64)
        .pair(theater, odeon)
        .build()
        .expect("valid event");
    let matched = broker.publish(&event);
    println!(
        "published {} -> matched {:?}",
        event.display(broker.vocabulary()),
        matched
    );
    assert_eq!(matched, vec![id]);

    // A pricier screening does not match.
    let pricey = Event::builder()
        .pair(movie, groundhog_day)
        .pair(price, 12i64)
        .build()
        .unwrap();
    let matched = broker.publish(&pricey);
    println!(
        "published {} -> matched {:?}",
        pricey.display(broker.vocabulary()),
        matched
    );
    assert!(matched.is_empty());

    println!("quickstart OK");
}
