//! Engine comparison on a generated workload — a miniature of the paper's
//! Figure 3(a) runnable in seconds.
//!
//! Loads the same W0 workload (32 attributes, 5 equality predicates per
//! subscription, values 1–35) into every engine, publishes the same event
//! stream, and prints throughput, checks per event and the phase split.
//!
//! Run with: `cargo run --release --example engine_comparison`

use fastpubsub::core::{EngineKind, MatchEngine};
use fastpubsub::types::SubscriptionId;
use fastpubsub::workload::{presets, WorkloadGen};
use std::time::Instant;

const N_SUBS: usize = 50_000;
const N_EVENTS: usize = 200;

fn main() {
    println!("W0 workload, {N_SUBS} subscriptions, {N_EVENTS} events\n");
    println!(
        "{:>16}  {:>10}  {:>12}  {:>14}  {:>12}",
        "engine", "events/s", "checks/event", "phase1/2 (us)", "matches"
    );

    for kind in EngineKind::PAPER_ENGINES {
        // Each engine gets an identical, freshly seeded workload.
        let mut gen = WorkloadGen::new(presets::w0(N_SUBS));
        let mut engine = kind.build();
        for i in 0..N_SUBS {
            engine.insert(SubscriptionId(i as u32), &gen.subscription());
        }
        engine.finalize();

        let events: Vec<_> = (0..N_EVENTS).map(|_| gen.event()).collect();
        let mut out = Vec::new();
        let start = Instant::now();
        for e in &events {
            out.clear();
            engine.match_event(e, &mut out);
        }
        let elapsed = start.elapsed();
        let s = engine.stats();
        println!(
            "{:>16}  {:>10.0}  {:>12.0}  {:>7.0}/{:<6.0}  {:>12}",
            kind.label(),
            N_EVENTS as f64 / elapsed.as_secs_f64(),
            s.checks_per_event(),
            s.phase1_nanos as f64 / s.events as f64 / 1e3,
            s.phase2_nanos as f64 / s.events as f64 / 1e3,
            s.matches,
        );
    }

    println!("\nSame workload, same events: every engine reports the same match count.");
    println!("engine_comparison OK");
}
